"""E13 — batched execution throughput vs batch size.

The batched operator engine pays its per-call overhead (dispatch,
instrumentation bookkeeping) once per **batch** instead of once per row.
``batch_size=1`` reproduces classic tuple-at-a-time Volcano dispatch;
this experiment sweeps the batch size over two pipeline shapes —
scan → filter → aggregate, and a 3-way hash join — at every
instrumentation level, and reports throughput in source rows/second.

Expected shape: throughput climbs steeply from ``batch_size=1`` and
flattens once per-batch overhead is amortized (a few hundred rows);
instrumentation (ROWS, then FULL) costs the most *relatively* at small
batches, because its per-``next_batch`` bookkeeping is the overhead
being amortized.  Results are identical at every batch size — the sweep
re-checks that on every run.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..executor import ExecContext
from ..executor import run as exec_run
from ..expr import col
from ..obs import InstrumentLevel
from ..physical import PHashJoin, PSeqScan
from ..workloads import WholesaleScale, load_wholesale
from .measure import fresh_db
from .tables import Ratio, ResultTable

#: scan -> filter -> aggregate over the widest wholesale table
AGG_QUERY = (
    "SELECT status, COUNT(*) AS n, SUM(total) AS revenue "
    "FROM orders WHERE total > 500.0 GROUP BY status"
)

DEFAULT_BATCH_SIZES = (1, 64, 256, 1024)


def _join_plan(db):
    """lineitem ⋈ orders ⋈ customer, all hash joins, built explicitly so
    the shape never depends on planner choices."""
    lineitem = PSeqScan(db.table("lineitem"), "l")
    orders = PSeqScan(db.table("orders"), "o")
    customer = PSeqScan(db.table("customer"), "c")
    inner = PHashJoin(lineitem, orders, col("l.order_id"), col("o.id"))
    return PHashJoin(inner, customer, col("o.cust_id"), col("c.id"))


def _throughput(
    db, plan, level, batch_size, repeats, columnar=False, cold=False
):
    """Best-of-*repeats* source rows/second."""
    best_rate = 0.0
    rows = None
    for _ in range(max(1, repeats)):
        if cold:
            db.pool.clear()
        ctx = ExecContext(
            db.pool,
            db.work_mem_pages,
            instrument=level,
            batch_size=batch_size,
            columnar=columnar,
        )
        start = time.perf_counter()
        result = exec_run(plan, ctx)
        elapsed = time.perf_counter() - start
        rate = ctx.metrics.rows_scanned / elapsed if elapsed else 0.0
        best_rate = max(best_rate, rate)
        rows = result
    return best_rate, rows


def run(
    scale: Optional[WholesaleScale] = None,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    buffer_pages: int = 64,
    work_mem_pages: int = 64,  # keep the join's build side in memory so
    # the sweep measures dispatch amortization, not temp-file I/O
    repeats: int = 3,
    seed: int = 42,
) -> List[ResultTable]:
    db = fresh_db(buffer_pages=buffer_pages, work_mem_pages=work_mem_pages)
    load_wholesale(db, scale or WholesaleScale.small(), seed=seed)

    plans = {
        "scan-filter-agg": db.plan(AGG_QUERY),
        "hash-join-3way": _join_plan(db),
    }

    table = ResultTable(
        "E13 — batched execution throughput (source rows/sec)",
        ["pipeline", "instrument"]
        + [f"bs={b}: krows/s" for b in batch_sizes]
        + [f"speedup bs={batch_sizes[-1]}/bs={batch_sizes[0]}"],
        notes=(
            "best of {} runs, warm buffer pool; results verified identical "
            "across batch sizes".format(repeats)
        ),
    )
    for name, plan in plans.items():
        for level in (
            InstrumentLevel.OFF,
            InstrumentLevel.ROWS,
            InstrumentLevel.FULL,
        ):
            rates = []
            reference_rows = None
            for batch_size in batch_sizes:
                rate, rows = _throughput(db, plan, level, batch_size, repeats)
                rates.append(rate)
                if reference_rows is None:
                    reference_rows = sorted(rows)
                elif sorted(rows) != reference_rows:
                    raise AssertionError(
                        f"{name}: results differ at batch_size={batch_size}"
                    )
            table.add(
                name,
                level.name,
                *[r / 1000.0 for r in rates],
                Ratio(rates[-1] / rates[0] if rates[0] else 0.0),
            )
    return [table, _columnar_table(db, plans, batch_sizes[-1], repeats)]


def _columnar_table(db, plans, batch_size, repeats) -> ResultTable:
    """E13b — the row engine vs the columnar engine, same plans, at the
    sweep's largest batch size, cold and warm buffer pool.  Results must
    be bit-identical across engines (the differential contract)."""
    table = ResultTable(
        "E13b — row vs columnar engine (source rows/sec, "
        f"batch_size={batch_size})",
        [
            "pipeline",
            "pool",
            "row: krows/s",
            "columnar: krows/s",
            "speedup",
        ],
        notes=(
            "best of {} runs; columnar adds vectorized page decode, "
            "kernel predicates and the sorted-array hash-join probe; "
            "results verified identical across engines".format(repeats)
        ),
    )
    level = InstrumentLevel.ROWS
    for name, plan in plans.items():
        for pool_state in ("cold", "warm"):
            cold = pool_state == "cold"
            row_rate, row_rows = _throughput(
                db, plan, level, batch_size, repeats, cold=cold
            )
            col_rate, col_rows = _throughput(
                db, plan, level, batch_size, repeats, columnar=True, cold=cold
            )
            if row_rows != col_rows:
                raise AssertionError(
                    f"{name}: columnar results differ from the row engine"
                )
            table.add(
                name,
                pool_state,
                row_rate / 1000.0,
                col_rate / 1000.0,
                Ratio(col_rate / row_rate if row_rate else 0.0),
            )
    return table
