"""E6 — Cardinality-estimation accuracy (Table 4).

Load a table with a uniform column, a Zipf-skewed column and a correlated
column pair; issue point, range, conjunctive and join predicates; estimate
each under three estimator tiers (uniform assumption / histograms /
histograms+MCVs); execute for ground truth; report q-error.

Expected shape: histograms fix ranges on skew, MCVs fix points on skew,
nothing fixes correlated conjuncts (the independence assumption) — the
classic error hierarchy.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..algebra import build_plan, extract_join_graph, push_down_predicates, transform_join_regions
from ..engine import Database
from ..optimizer import Estimator, EstimatorConfig, StatsResolver
from ..sql import SelectStmt, parse
from ..workloads import Rng, correlated_pair, uniform_ints, zipf_ints
from .measure import fresh_db
from .tables import ResultTable, geometric_mean, q_error, quantile

TIERS: Dict[str, EstimatorConfig] = {
    "uniform": EstimatorConfig(use_histograms=False, use_mcvs=False),
    "histogram": EstimatorConfig(use_histograms=True, use_mcvs=False),
    "hist+mcv": EstimatorConfig(use_histograms=True, use_mcvs=True),
}


def load_skew_tables(
    db: Database, num_rows: int = 12000, domain: int = 200, seed: int = 23
) -> None:
    rng = Rng(seed)
    db.execute(
        "CREATE TABLE skewed (id INT, uni INT, zipf INT, ca INT, cb INT)"
    )
    ca, cb = correlated_pair(rng.spawn(4), num_rows, domain // 4, 0.95)
    db.insert_rows(
        "skewed",
        list(
            zip(
                range(num_rows),
                uniform_ints(rng.spawn(1), num_rows, 0, domain - 1),
                zipf_ints(rng.spawn(2), num_rows, domain, skew=1.1),
                ca,
                cb,
            )
        ),
    )
    db.execute("CREATE TABLE dim (id INT, grp INT)")
    db.insert_rows(
        "dim",
        list(
            zip(
                range(domain),
                uniform_ints(rng.spawn(5), domain, 0, 9),
            )
        ),
    )
    db.analyze()


def make_queries(domain: int) -> List[Tuple[str, str]]:
    """The estimation probe set, parameterized by the value domain."""
    tail = int(domain * 0.75)
    return [
        ("point on uniform", "SELECT COUNT(*) AS n FROM skewed WHERE uni = 7"),
        ("point on zipf head", "SELECT COUNT(*) AS n FROM skewed WHERE zipf = 0"),
        (
            "point on zipf tail",
            f"SELECT COUNT(*) AS n FROM skewed WHERE zipf = {tail}",
        ),
    ] + QUERIES


#: (label, sql) — COUNT(*) wrappers give ground truth.
QUERIES: List[Tuple[str, str]] = [
    ("range on uniform", "SELECT COUNT(*) AS n FROM skewed WHERE uni < 20"),
    ("range on zipf", "SELECT COUNT(*) AS n FROM skewed WHERE zipf < 5"),
    (
        "conjunct independent",
        "SELECT COUNT(*) AS n FROM skewed WHERE uni < 40 AND zipf < 10",
    ),
    (
        "conjunct correlated",
        "SELECT COUNT(*) AS n FROM skewed WHERE ca = 3 AND cb = 3",
    ),
    (
        "equi-join",
        "SELECT COUNT(*) AS n FROM skewed, dim WHERE skewed.zipf = dim.id",
    ),
    (
        "join + filter",
        "SELECT COUNT(*) AS n FROM skewed, dim "
        "WHERE skewed.zipf = dim.id AND dim.grp = 3",
    ),
]


def _estimate_with(db: Database, sql: str, config: EstimatorConfig) -> float:
    """Estimated output rows of the query's join region under *config*."""
    stmt = parse(sql)
    assert isinstance(stmt, SelectStmt)
    logical = push_down_predicates(build_plan(stmt, db.catalog))
    estimates: List[float] = []

    def visit(region):
        graph = extract_join_graph(region)
        estimator = Estimator(StatsResolver(graph), config)
        rows = 1.0
        for binding in graph.bindings():
            get = graph.relations[binding]
            rows *= max(
                1.0,
                estimator.scan_rows(
                    get.table, graph.filter_conjuncts(binding)
                ),
            )
        for pair, conjuncts in graph.edges.items():
            rows *= estimator.join_selectivity(conjuncts)
        for _, conjunct in graph.hyper:
            rows *= estimator.selectivity(conjunct)
        estimates.append(max(rows, 0.0))
        return region

    transform_join_regions(logical, visit)
    return estimates[0] if estimates else 0.0


def run(
    num_rows: int = 12000,
    domain: int = 200,
    seed: int = 23,
    histogram_buckets: int = 32,
) -> List[ResultTable]:
    db = fresh_db(buffer_pages=256, work_mem_pages=16)
    load_skew_tables(db, num_rows, domain, seed)
    db.analyze(num_buckets=histogram_buckets)

    detail = ResultTable(
        "E6/Table 4 — cardinality estimation q-error by estimator tier",
        ["predicate", "actual"] + [f"{t} est" for t in TIERS] + [
            f"{t} q-err" for t in TIERS
        ],
    )
    errors: Dict[str, List[float]] = {t: [] for t in TIERS}
    for label, sql in make_queries(domain):
        actual = float(db.query(sql).rows[0][0])
        ests = {t: _estimate_with(db, sql, cfg) for t, cfg in TIERS.items()}
        row: List[object] = [label, actual]
        row.extend(ests[t] for t in TIERS)
        for t in TIERS:
            err = q_error(ests[t], actual)
            errors[t].append(err)
            row.append(err)
        detail.rows.append(row)

    summary = ResultTable(
        "E6/Table 4b — q-error summary (lower is better)",
        ["tier", "geo-mean", "median", "p95", "max"],
    )
    for t in TIERS:
        vals = errors[t]
        summary.add(
            t,
            geometric_mean(vals),
            quantile(vals, 0.5),
            quantile(vals, 0.95),
            max(vals),
        )
    return [detail, summary]
