"""E8 — Buffer-size sensitivity (Figure 3).

The same two-table join executed with every join method while the buffer
pool grows from a few pages to table-sized.  Classic shape:

* block nested loop improves steeply with memory (bigger blocks → fewer
  inner rescans) until the inner fits, then flatlines;
* hash join is flat once the build side fits work memory, paying only the
  two input scans;
* sort-merge steps down as sort runs lengthen (fewer spill passes);
* index nested loop is hostage to cache hit rate on index+heap pages.
"""

from __future__ import annotations

from typing import List, Optional

from ..engine import Database
from ..expr import col, eq
from ..physical import (
    PHashJoin,
    PIndexNLJoin,
    PNestedLoopJoin,
    PSeqScan,
    PSort,
    PSortMergeJoin,
)
from ..workloads import Rng, shuffled_ints, uniform_floats, uniform_ints
from .measure import fresh_db, measure_plan
from .tables import ResultTable

METHODS = ("block-NL", "sort-merge", "hash", "index-NL")


def _load(db: Database, outer_rows: int, inner_rows: int, seed: int) -> None:
    rng = Rng(seed)
    db.execute("CREATE TABLE r (id INT, fk INT, pad FLOAT)")
    db.insert_rows(
        "r",
        list(
            zip(
                shuffled_ints(rng.spawn(1), outer_rows),
                uniform_ints(rng.spawn(2), outer_rows, 0, inner_rows - 1),
                uniform_floats(rng.spawn(3), outer_rows),
            )
        ),
    )
    db.execute("CREATE TABLE s (id INT, pad FLOAT)")
    db.insert_rows(
        "s",
        list(
            zip(
                shuffled_ints(rng.spawn(4), inner_rows),
                uniform_floats(rng.spawn(5), inner_rows),
            )
        ),
    )
    db.execute("CREATE INDEX ix_s_id ON s (id)")
    db.analyze()


def _method_plan(db: Database, method: str):
    r, s = db.table("r"), db.table("s")
    left, right = PSeqScan(r, "r"), PSeqScan(s, "s")
    lk, rk = col("r.fk"), col("s.id")
    if method == "block-NL":
        return PNestedLoopJoin(
            left, right, eq(lk, rk),
            block_pages=max(1, db.work_mem_pages - 2),
        )
    if method == "sort-merge":
        return PSortMergeJoin(
            PSort(left, ((lk, True),)), PSort(right, ((rk, True),)), lk, rk
        )
    if method == "hash":
        return PHashJoin(left, right, lk, rk)
    if method == "index-NL":
        return PIndexNLJoin(left, s, "s", s.index_on("id"), lk)
    raise ValueError(method)


def run(
    outer_rows: int = 6000,
    inner_rows: int = 6000,
    buffer_sizes: Optional[List[int]] = None,
    seed: int = 37,
) -> List[ResultTable]:
    buffer_sizes = buffer_sizes or [8, 16, 32, 64, 128]
    table = ResultTable(
        "E8/Figure 3 — actual join I/O vs buffer pool size",
        ["buffer pages", "work_mem pages"] + list(METHODS),
        notes=f"{outer_rows} ⋈ {inner_rows} rows; work_mem = buffer/2",
    )
    for buffer_pages in buffer_sizes:
        work_mem = max(3, buffer_pages // 2)
        db = fresh_db(buffer_pages=buffer_pages, work_mem_pages=work_mem)
        _load(db, outer_rows, inner_rows, seed)
        row: List[object] = [buffer_pages, work_mem]
        for method in METHODS:
            plan = _method_plan(db, method)
            m = measure_plan(db, plan)
            row.append(m.actual_io)
        table.rows.append(row)
    return [table]
