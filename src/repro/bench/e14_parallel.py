"""E14 — intra-query parallel scaling via exchange operators.

Exchange-style parallelism splits a partitionable pipeline across worker
processes (each with a copy-on-write view of the buffer pool) and
gathers results in a deterministic, order-preserving merge.  This
experiment sweeps the degree of parallelism over three shapes — a
scan→filter→project pipeline, a two-phase aggregate, and an ORDER BY
with a gather merge — and reports wall-clock speedup over the serial
plan.  Every parallel result is verified *identical* (order included)
to the serial result before any timing is reported: the speedup claims
sit on top of the bit-identity contract, not beside it.

Expected shape: near-linear speedup on the CPU-bound aggregate while the
machine has cores to give (on a single-core container the sweep still
verifies identity but speedups hover around 1x or below — forking is
pure overhead without parallel hardware), and a flat curve once workers
outnumber cores.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Sequence

from ..optimizer import PlannerOptions
from ..physical import contains_parallel
from ..workloads import WholesaleScale, load_wholesale
from .measure import fresh_db
from .tables import Ratio, ResultTable

QUERIES = {
    "scan-filter-project": (
        "SELECT o.id, o.total FROM orders o WHERE o.total > 250.0"
    ),
    "two-phase-agg": (
        "SELECT o.status, COUNT(*) AS n, MIN(o.id) AS mn, MAX(o.id) AS mx "
        "FROM orders o GROUP BY o.status"
    ),
    "parallel-sort": (
        "SELECT o.id, o.status FROM orders o WHERE o.total > 100.0 "
        "ORDER BY o.status, o.id"
    ),
}

DEFAULT_DEGREES = (1, 2, 4)


def _best_time(db, sql, repeats):
    best = float("inf")
    rows = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = db.query(sql)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
        rows = result.rows
    return best, rows


def run(
    scale: Optional[WholesaleScale] = None,
    degrees: Sequence[int] = DEFAULT_DEGREES,
    buffer_pages: int = 256,
    work_mem_pages: int = 64,
    repeats: int = 3,
    seed: int = 42,
) -> List[ResultTable]:
    db = fresh_db(buffer_pages=buffer_pages, work_mem_pages=work_mem_pages)
    load_wholesale(db, scale or WholesaleScale.small(), seed=seed)

    cores = os.cpu_count() or 1
    table = ResultTable(
        "E14 — intra-query parallel speedup over serial (wall clock)",
        ["pipeline", "serial ms"]
        + [f"d={d}: speedup" for d in degrees]
        + ["parallel plan"],
        notes=(
            f"best of {repeats} runs, warm buffer pool, {cores} core(s) "
            "visible; every parallel result verified bit-identical to "
            "serial before timing is reported"
        ),
    )
    for name, sql in QUERIES.items():
        db.options = PlannerOptions()
        serial_time, serial_rows = _best_time(db, sql, repeats)
        speedups = []
        parallelized = False
        for degree in degrees:
            db.options = PlannerOptions(
                parallel_degree=degree, force_parallel=degree > 1
            )
            plan = db.plan(sql)
            parallel_time, rows = _best_time(db, sql, repeats)
            if rows != serial_rows:
                raise AssertionError(
                    f"{name}: parallel rows differ from serial at "
                    f"degree={degree}"
                )
            if degree > 1 and contains_parallel(plan):
                parallelized = True
            speedups.append(serial_time / parallel_time if parallel_time else 0.0)
        db.options = PlannerOptions()
        table.add(
            name,
            serial_time * 1000.0,
            *[Ratio(s) for s in speedups],
            "yes" if parallelized else "no",
        )
    return [table]
