"""E1 — Join-method cost matrix (Table 1).

The foundational result: no join method dominates.  For pairs of relations
of varying size, run every join method on the same equi-join and record
actual page I/O (cold buffer pool) alongside the cost model's estimate.

Expected shape (the classic one):

* tuple nested loop is catastrophic except for tiny inners;
* block nested loop is fine when one side fits in memory;
* sort-merge and hash win at scale, hash usually cheapest when the build
  side fits;
* index nested loop wins when the outer is small relative to the inner.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..engine import Database
from ..expr import col, eq
from ..physical import (
    PHashJoin,
    PIndexNLJoin,
    PNestedLoopJoin,
    PSeqScan,
    PSort,
    PSortMergeJoin,
)
from ..workloads import Rng, shuffled_ints, uniform_floats, uniform_ints
from .measure import fresh_db, measure_plan
from .tables import ResultTable

METHODS = ("tuple-NL", "block-NL", "sort-merge", "hash", "index-NL")


def _load_pair(
    db: Database, outer_rows: int, inner_rows: int, seed: int
) -> None:
    rng = Rng(seed)
    db.execute("CREATE TABLE r (id INT, fk INT, pad FLOAT)")
    db.insert_rows(
        "r",
        list(
            zip(
                shuffled_ints(rng.spawn(1), outer_rows),
                uniform_ints(rng.spawn(2), outer_rows, 0, max(1, inner_rows) - 1),
                uniform_floats(rng.spawn(3), outer_rows),
            )
        ),
    )
    db.execute("CREATE TABLE s (id INT, pad FLOAT)")
    db.insert_rows(
        "s",
        list(
            zip(
                shuffled_ints(rng.spawn(4), inner_rows),
                uniform_floats(rng.spawn(5), inner_rows),
            )
        ),
    )
    db.execute("CREATE INDEX ix_s_id ON s (id)")
    db.analyze()


def _build_method(db: Database, method: str):
    r = db.table("r")
    s = db.table("s")
    left = PSeqScan(r, "r")
    right = PSeqScan(s, "s")
    model = db.model
    lk, rk = col("r.fk"), col("s.id")

    if method == "tuple-NL":
        return PNestedLoopJoin(left, right, eq(lk, rk), block_pages=1)
    if method == "block-NL":
        return PNestedLoopJoin(
            left, right, eq(lk, rk), block_pages=max(1, model.work_mem_pages - 2)
        )
    if method == "sort-merge":
        return PSortMergeJoin(
            PSort(left, ((lk, True),)),
            PSort(right, ((rk, True),)),
            lk,
            rk,
        )
    if method == "hash":
        return PHashJoin(left, right, lk, rk)
    if method == "index-NL":
        index = s.index_on("id")
        return PIndexNLJoin(left, s, "s", index, lk)
    raise ValueError(method)


def _estimate(db: Database, method: str, outer_rows: int, inner_rows: int) -> float:
    model = db.model
    r = db.table("r")
    s = db.table("s")
    out_rows = float(outer_rows)  # FK join: one match per outer row
    scan_l = model.seq_scan(r.num_pages, outer_rows)
    scan_r = model.seq_scan(s.num_pages, inner_rows)
    l_pages, r_pages = float(r.num_pages), float(s.num_pages)
    if method == "tuple-NL":
        return (
            scan_l
            + model.block_nested_loop(
                l_pages, outer_rows, scan_r, inner_rows, block_pages=1
            )
        ).total
    if method == "block-NL":
        return (
            scan_l
            + model.block_nested_loop(l_pages, outer_rows, scan_r, inner_rows)
        ).total
    if method == "sort-merge":
        return (
            scan_l
            + scan_r
            + model.sort(l_pages, outer_rows)
            + model.sort(r_pages, inner_rows)
            + model.merge_join(outer_rows, inner_rows, out_rows)
        ).total
    if method == "hash":
        return (
            scan_l
            + scan_r
            + model.hash_join(l_pages, outer_rows, r_pages, inner_rows, out_rows)
        ).total
    if method == "index-NL":
        index = s.index_on("id")
        return (
            scan_l
            + model.index_nested_loop(
                outer_rows, index, s.num_pages, inner_rows, 1.0
            )
        ).total
    raise ValueError(method)


def run(
    sizes: Optional[List[Tuple[int, int]]] = None,
    buffer_pages: int = 64,
    work_mem_pages: int = 16,
    seed: int = 101,
    skip_tuple_nl_above: int = 200_000,
) -> List[ResultTable]:
    """Run the join-method matrix; returns [actual-I/O table, estimate table]."""
    if sizes is None:
        sizes = [(500, 500), (2000, 2000), (8000, 2000), (2000, 8000)]
    actual = ResultTable(
        "E1/Table 1 — join methods, actual page I/O (cold)",
        ["outer", "inner"] + list(METHODS),
        notes="outer joins inner on a foreign key; work_mem="
        f"{work_mem_pages} pages",
    )
    estimated = ResultTable(
        "E1/Table 1b — join methods, modeled cost",
        ["outer", "inner"] + list(METHODS),
    )
    for outer_rows, inner_rows in sizes:
        db = fresh_db(buffer_pages=buffer_pages, work_mem_pages=work_mem_pages)
        _load_pair(db, outer_rows, inner_rows, seed)
        act_row: List[object] = [outer_rows, inner_rows]
        est_row: List[object] = [outer_rows, inner_rows]
        for method in METHODS:
            if (
                method == "tuple-NL"
                and outer_rows * inner_rows > skip_tuple_nl_above
            ):
                act_row.append(None)
                est_row.append(_estimate(db, method, outer_rows, inner_rows))
                continue
            plan = _build_method(db, method)
            m = measure_plan(db, plan)
            act_row.append(m.actual_io)
            est_row.append(_estimate(db, method, outer_rows, inner_rows))
        actual.rows.append(act_row)
        estimated.rows.append(est_row)
    return [actual, estimated]


def winner_per_row(table: ResultTable) -> Dict[Tuple[int, int], str]:
    """The cheapest method per size pair (ignores skipped cells)."""
    out: Dict[Tuple[int, int], str] = {}
    for row in table.rows:
        outer, inner = row[0], row[1]
        best, best_v = None, None
        for method, value in zip(METHODS, row[2:]):
            if value is None:
                continue
            if best_v is None or value < best_v:
                best, best_v = method, value
        out[(outer, inner)] = best
    return out
