"""E10 — End-to-end optimizer benefit on the wholesale workload (Table 7).

All eight analytical queries, planned by the full cost-based optimizer and
by a baseline planner; executed cold.  Two currencies are reported:

* actual page I/O — what the 1977 cost model predicts;
* wall-clock time — which also reflects the CPU term of the cost model
  (tuple comparisons dominate bad nested-loop plans even when the pages
  are cached).

The headline is the geometric-mean time ratio; per-query I/O shows where
the win comes from (join order + access paths).  Result sets are verified
identical between strategies (modulo float summation order).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..workloads import WHOLESALE_QUERIES, WholesaleScale, load_wholesale
from .measure import fresh_db, measure_plan, plan_with_strategy
from .tables import Ratio, ResultTable, geometric_mean


def _rows_equal(a, b, rel_tol: float = 1e-9) -> bool:
    """Result-set equality tolerant of float summation order."""
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(sorted(a, key=repr), sorted(b, key=repr)):
        if len(row_a) != len(row_b):
            return False
        for x, y in zip(row_a, row_b):
            if isinstance(x, float) and isinstance(y, float):
                if not math.isclose(x, y, rel_tol=rel_tol, abs_tol=1e-9):
                    return False
            elif x != y:
                return False
    return True


def run(
    scale: Optional[WholesaleScale] = None,
    seed: int = 42,
    baseline: str = "syntactic",
    queries: Optional[List[str]] = None,
    buffer_pages: int = 48,
    repeats: int = 1,
) -> List[ResultTable]:
    db = fresh_db(buffer_pages=buffer_pages, work_mem_pages=12)
    load_wholesale(db, scale or WholesaleScale.small(), seed=seed)
    names = queries or list(WHOLESALE_QUERIES)
    table = ResultTable(
        f"E10/Table 7 — optimized (dp) vs {baseline} on the wholesale workload",
        [
            "query", "rows",
            "dp: I/O", f"{baseline}: I/O",
            "dp: time (ms)", f"{baseline}: time (ms)", "time ratio",
        ],
    )
    time_ratios: List[float] = []
    total_dp_io = 0
    total_base_io = 0
    total_dp_t = 0.0
    total_base_t = 0.0
    for name in names:
        sql = WHOLESALE_QUERIES[name]
        dp_plan, _ = plan_with_strategy(db, sql, "dp")
        base_plan, _ = plan_with_strategy(db, sql, baseline, random_seed=seed)
        dp = _best_of(db, dp_plan, repeats)
        base = _best_of(db, base_plan, repeats)
        if not _rows_equal(dp.result.rows, base.result.rows):
            raise AssertionError(f"{name}: strategies disagree on results")
        ratio = (
            base.exec_seconds / dp.exec_seconds
            if dp.exec_seconds > 0
            else 1.0
        )
        time_ratios.append(max(ratio, 1e-9))
        total_dp_io += dp.actual_io
        total_base_io += base.actual_io
        total_dp_t += dp.exec_seconds
        total_base_t += base.exec_seconds
        table.add(
            name,
            dp.rows,
            dp.actual_io,
            base.actual_io,
            dp.exec_seconds * 1000,
            base.exec_seconds * 1000,
            Ratio(ratio),
        )
    table.add(
        "TOTAL",
        None,
        total_dp_io,
        total_base_io,
        total_dp_t * 1000,
        total_base_t * 1000,
        Ratio(total_base_t / total_dp_t if total_dp_t else 1.0),
    )
    table.notes = (
        f"geo-mean time ratio {geometric_mean(time_ratios):.2f}x "
        f"({baseline} / dp); identical result sets verified per query"
    )
    return [table]


def _best_of(db, plan, repeats: int):
    best = None
    for _ in range(max(1, repeats)):
        m = measure_plan(db, plan, keep_result=True)
        if best is None or m.exec_seconds < best.exec_seconds:
            best = m
    return best
