"""E19 — request-tracing overhead on the serving path.

Observability that nobody dares leave on is observability that is off
when the incident happens.  This experiment prices the request-tracing
stack introduced for the serving path — span trees with identity,
thread-local propagation into the WAL/lock/MVCC layers, latency
histograms — on a mixed point-read/DML workload executed through
sessions (the server's execution path, minus the socket):

* ``obs off``          — ``ObsConfig.off()``: no tracing, no metrics, no
  query log (the uninstrumented ceiling);
* ``tracing off``      — default observability with ``trace=False``:
  metrics and the query log stay on, no span trees;
* ``tracing on``       — the default configuration: every statement
  builds its span tree (lock.acquire, execute, wal.append, wal.fsync,
  txn.commit, mvcc.*), latency quantiles accumulate;
* ``tracing + capture``— tracing with ``auto_explain`` at threshold 0,
  so every request is additionally wrapped into a
  :class:`~repro.obs.trace.RequestTrace` and pushed through the
  slow-trace ring.

The acceptance bar: default tracing costs at most a few percent over
``tracing off`` — the tree is a handful of spans per statement, each one
``perf_counter`` pair and one list append.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from ..engine import Database
from ..obs import ObsConfig
from .tables import Ratio, ResultTable


def _workload(db: Database, statements: int) -> None:
    """Alternate point inserts and point reads through a session — the
    same per-statement path a server connection exercises."""
    session = db.create_session()
    try:
        for i in range(statements):
            if i % 2 == 0:
                session.execute(f"INSERT INTO kv VALUES ({i}, {i % 97})")
            else:
                session.query(f"SELECT v FROM kv WHERE k = {i - 1}")
    finally:
        session.close()


def _measure(config: str, statements: int, repeats: int) -> Tuple[float, int]:
    """(best seconds over *repeats*, spans in the last trace)."""
    best = float("inf")
    spans = 0
    for _ in range(repeats):
        if config == "obs off":
            db = Database(obs=ObsConfig.off())
        else:
            db = Database()
            db.obs.trace = config != "tracing off"
            if config == "tracing + capture":
                db.auto_explain.configure(enabled=True, threshold_ms=0.0)
        try:
            db.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
            start = time.perf_counter()
            _workload(db, statements)
            best = min(best, time.perf_counter() - start)
            if db.last_trace is not None:
                spans = sum(1 for _ in db.last_trace.walk())
        finally:
            db.close()
    return best, spans


def run(statements: int = 600, repeats: int = 3) -> List[ResultTable]:
    table = ResultTable(
        "E19 — request-tracing overhead (session point insert/read mix)",
        [
            "configuration",
            "statements/s",
            "spans/stmt",
            "overhead vs tracing-off",
        ],
        notes=(
            f"{statements} alternating point inserts and reads per arm, "
            f"best of {repeats} runs; 'overhead' compares against the "
            "same observability config with span trees disabled — the "
            "marginal price of tracing itself"
        ),
    )
    configs = ("obs off", "tracing off", "tracing on", "tracing + capture")
    results = {c: _measure(c, statements, repeats) for c in configs}
    baseline = statements / results["tracing off"][0]
    for config in configs:
        elapsed, spans = results[config]
        rate = statements / elapsed if elapsed else 0.0
        table.add(
            config,
            round(rate, 1),
            spans,
            Ratio(baseline / rate if rate else 0.0),
        )
    return [table]
