"""E9 — Rewrite ablation (Table 6): predicate pushdown on/off.

The same wholesale queries planned with and without predicate pushdown
(the projection-pruning rewrite is exercised by the logical layer's tests;
pushdown is the one with first-order cost impact since filters that stay
above a join multiply intermediate sizes).

Reported per query: modeled cost, actual I/O and actual rows flowing
through the top join, with pushdown on and off.
"""

from __future__ import annotations

from typing import List, Optional

from ..engine import Database
from ..optimizer import PlannerOptions
from ..sql import SelectStmt, parse
from ..workloads import WHOLESALE_QUERIES, WholesaleScale, load_wholesale
from .measure import fresh_db, measure_plan
from .tables import Ratio, ResultTable

#: queries with meaningful single-table filters to push
ABLATION_QUERIES = [
    "Q3_top_customers",
    "Q4_line_revenue",
    "Q5_big_orders_by_segment",
    "Q6_five_way",
]


def _plan(db: Database, sql: str, pushdown: bool):
    saved = db.options
    try:
        db.options = PlannerOptions(strategy="dp", pushdown=pushdown)
        stmt = parse(sql)
        assert isinstance(stmt, SelectStmt)
        plan, _ = db.plan_select(stmt)
        return plan
    finally:
        db.options = saved


def run(
    scale: Optional[WholesaleScale] = None,
    seed: int = 42,
    queries: Optional[List[str]] = None,
) -> List[ResultTable]:
    db = fresh_db(buffer_pages=128, work_mem_pages=16)
    load_wholesale(db, scale or WholesaleScale.small(), seed=seed)
    queries = queries or ABLATION_QUERIES
    table = ResultTable(
        "E9/Table 6 — predicate pushdown ablation",
        [
            "query",
            "pushdown: cost", "pushdown: I/O",
            "no pushdown: cost", "no pushdown: I/O",
            "I/O ratio",
        ],
    )
    for name in queries:
        sql = WHOLESALE_QUERIES[name]
        with_pd = measure_plan(db, _plan(db, sql, True))
        without = measure_plan(db, _plan(db, sql, False))
        ratio = Ratio(
            without.actual_io / with_pd.actual_io
            if with_pd.actual_io
            else 1.0
        )
        table.add(
            name,
            with_pd.est_cost_total,
            with_pd.actual_io,
            without.est_cost_total,
            without.actual_io,
            ratio,
        )
    return [table]
