"""Result tables: the paper-style rows the experiments print.

A :class:`ResultTable` is a named list of column headers plus rows of
values; ``render()`` produces the aligned ASCII block that EXPERIMENTS.md
and the bench output embed.  Values format sensibly by type (floats get 3
significant digits, ratios get an ``x`` suffix via :class:`Ratio`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence


@dataclass(frozen=True)
class Ratio:
    """A ratio rendered as ``2.4x``."""

    value: float

    def __str__(self) -> str:
        return f"{self.value:.2f}x"


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, Ratio):
        return str(value)
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class ResultTable:
    """One experiment table."""

    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: Optional[str] = None

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(
            c.ljust(w) for c, w in zip(self.columns, widths)
        )
        lines = [f"== {self.title} ==", header, sep]
        for row in cells:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def column_values(self, name: str) -> List[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def to_csv(self) -> str:
        """Comma-separated rendering for downstream analysis tools."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(
                [
                    v.value if isinstance(v, Ratio) else v
                    for v in row
                ]
            )
        return buffer.getvalue()

    def to_markdown(self) -> str:
        lines = [
            "| " + " | ".join(self.columns) + " |",
            "|" + "|".join("---" for _ in self.columns) + "|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
        return "\n".join(lines)


def render_all(tables: Iterable[ResultTable]) -> str:
    return "\n\n".join(t.render() for t in tables)


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= max(v, 1e-12)
    return product ** (1.0 / len(values))


def quantile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def q_error(estimated: float, actual: float) -> float:
    """The standard cardinality-estimation error metric (≥ 1)."""
    est = max(estimated, 1.0)
    act = max(actual, 1.0)
    return max(est / act, act / est)
