"""E16 — system-statistics overhead and reconciliation.

Always-on telemetry is only viable if the hot path barely notices it.
This experiment measures the cost of wait-event accounting on the E13
scan→filter→aggregate workload — executor throughput with the wait
registry attached vs detached, warm (no I/O: the cost is the lock
fast-path) and cold (every page read is timed) — and then audits the
``sys_stat_*`` tables themselves: the aggregates they serve through SQL
must reconcile exactly with the engine's own counters.

Expected shape: overhead within noise (well under 5% either way), and
every reconciliation row exact — statement calls equal queries issued,
``io.read`` wait counts equal disk reads, per-table ``rows_read`` equals
rows scanned.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..executor import ExecContext
from ..executor import run as exec_run
from ..obs import InstrumentLevel, WaitEventStats
from ..workloads import WholesaleScale, load_wholesale
from .e13_batching import AGG_QUERY
from .measure import fresh_db
from .tables import Ratio, ResultTable


def _throughput(db, plan, repeats: int, cold: bool) -> float:
    """Best-of-*repeats* source rows/second at the default ROWS level."""
    best = 0.0
    for _ in range(max(1, repeats)):
        if cold:
            db.pool.clear()
        ctx = ExecContext(
            db.pool,
            db.work_mem_pages,
            instrument=InstrumentLevel.ROWS,
            batch_size=db.batch_size,
        )
        start = time.perf_counter()
        exec_run(plan, ctx)
        elapsed = time.perf_counter() - start
        best = max(best, ctx.metrics.rows_scanned / elapsed if elapsed else 0.0)
    return best


def _overhead_table(db, plan, repeats: int) -> ResultTable:
    table = ResultTable(
        "E16 — wait-accounting overhead (scan-filter-agg, rows/sec)",
        ["pool state", "waits off: krows/s", "waits on: krows/s", "on/off"],
        notes=(
            f"best of {repeats} runs each; 'on' times every disk page "
            "access and contended lock acquire into the wait registry"
        ),
    )
    for label, cold in (("warm", False), ("cold", True)):
        db.pool.waits = None
        off = _throughput(db, plan, repeats, cold)
        db.pool.waits = db.waits
        on = _throughput(db, plan, repeats, cold)
        table.add(
            label,
            off / 1000.0,
            on / 1000.0,
            Ratio(on / off if off else 0.0),
        )
    return table


def _reconciliation_table(db, queries_run: int) -> ResultTable:
    """Audit the system tables through the engine's own SQL."""

    def one(sql: str):
        rows = db.query(sql).rows
        return rows[0][0] if rows else 0

    table = ResultTable(
        "E16 — system-table reconciliation (SQL view vs engine counters)",
        ["check", "via SQL", "engine counter", "exact"],
        notes="each aggregate served by a sys_stat_* table must equal the "
        "counter the engine maintains internally",
    )
    # engine-side values are captured BEFORE each probe query: the system
    # tables snapshot at planning time, so the observing statement's own
    # execution is not part of what it sees
    calls = one(
        "SELECT calls FROM sys_stat_statements "
        "WHERE statement = 'select status, count(*) as n, sum(total) as "
        "revenue from orders where total > ? group by status'"
    )
    table.add(
        "statement calls", calls, queries_run, str(calls == queries_run)
    )
    reads_before = db.disk.stats.reads
    io_read = one(
        "SELECT wait_count FROM sys_stat_waits WHERE event = 'io.read'"
    )
    table.add(
        "io.read waits = disk reads",
        io_read,
        reads_before,
        str(io_read == reads_before),
    )
    expected_rows = db.table("orders").access.rows_read
    rows_read = one(
        "SELECT rows_read FROM sys_stat_tables WHERE table_name = 'orders'"
    )
    table.add(
        "orders rows_read",
        rows_read,
        expected_rows,
        str(rows_read == expected_rows),
    )
    engine_total = db.metrics.counter("queries_total").value
    queries_total = one(
        "SELECT value FROM sys_stat_metrics WHERE name = 'queries_total'"
    )
    table.add(
        "queries_total metric",
        int(queries_total),
        int(engine_total),
        str(queries_total == engine_total),
    )
    return table


def run(
    scale: Optional[WholesaleScale] = None,
    buffer_pages: int = 64,
    work_mem_pages: int = 64,
    repeats: int = 5,
    queries: int = 4,
    seed: int = 42,
) -> List[ResultTable]:
    db = fresh_db(buffer_pages=buffer_pages, work_mem_pages=work_mem_pages)
    load_wholesale(db, scale or WholesaleScale.small(), seed=seed)
    assert isinstance(db.waits, WaitEventStats)

    plan = db.plan(AGG_QUERY)
    overhead = _overhead_table(db, plan, repeats)

    # a fresh, deterministic slate for the reconciliation workload
    db.pool.waits = db.waits
    db.waits.reset()
    db.metrics.reset()
    db.query_log.clear()
    db.pool.clear()
    db.reset_io()
    for _ in range(queries):
        db.query(AGG_QUERY)
    reconciliation = _reconciliation_table(db, queries)
    return [overhead, reconciliation]
