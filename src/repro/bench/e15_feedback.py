"""E15 — feedback-driven estimate correction (LEO-style) on a skewed,
correlated workload.

The System-R estimator multiplies per-predicate selectivities as if
columns were independent.  This experiment builds a table where that
assumption is maximally wrong — ``y = x // 50``, so a range on ``x``
*implies* the matching equality on ``y`` — and runs a query family whose
root cardinality is underestimated ~20x on a cold database.

Phase 1 (cold): queries run with feedback *off* in the planner while the
Database harvests est-vs-actual observations into its
:class:`~repro.obs.FeedbackStore` (keyed by table set + literal-free
predicate fingerprint, so the corrections generalize across literals).
Phase 2 (warm): the *same query shapes with different literals* run with
``PlannerOptions(use_feedback=True)``; the store is frozen during this
phase so corrected estimates (ratio ~1) do not dilute the learned
factors mid-measurement.

Two guarantees are checked, not just reported:

* the median root q-error improves *strictly* after warm-up, and
* every warm query returns exactly the same multiset of rows with
  feedback on and off — corrections move estimates, never results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..optimizer import PlannerOptions
from .measure import fresh_db
from .tables import Ratio, ResultTable, quantile

#: rows in the fact table; x cycles 0..999, y = x // 50 (20 distinct).
DEFAULT_ROWS = 4000

#: range starts (multiples of 50) used for warm-up vs. evaluation.  The
#: two sets are disjoint, so phase 2 never replays a phase-1 literal —
#: the corrections must generalize through the predicate fingerprint.
COLD_STARTS = (0, 50, 100, 150, 200, 250, 300, 350)
WARM_STARTS = (400, 450, 500, 550, 600, 650, 700, 750)


def _scan_sql(lo: int) -> str:
    """Range on x plus the (redundant, correlated) equality on y."""
    return (
        f"SELECT f.id FROM facts f "
        f"WHERE f.x >= {lo} AND f.x < {lo + 50} AND f.y = {lo // 50}"
    )


def _join_sql(lo: int) -> str:
    """Same correlated filter feeding a join with the dimension table."""
    return (
        f"SELECT f.id, d.label FROM facts f, dims d "
        f"WHERE f.y = d.y AND f.x >= {lo} AND f.x < {lo + 50} "
        f"AND f.y = {lo // 50}"
    )


FAMILIES = {
    "correlated scan": _scan_sql,
    "correlated join": _join_sql,
}


def _load(db, num_rows: int) -> None:
    db.execute("CREATE TABLE facts (id INT PRIMARY KEY, x INT, y INT)")
    db.execute("CREATE TABLE dims (y INT, label TEXT)")
    batch: List[str] = []
    for i in range(num_rows):
        x = i % 1000
        batch.append(f"({i}, {x}, {x // 50})")
        if len(batch) == 500:
            db.execute(f"INSERT INTO facts VALUES {', '.join(batch)}")
            batch = []
    if batch:
        db.execute(f"INSERT INTO facts VALUES {', '.join(batch)}")
    dims = ", ".join(f"({y}, 'band-{y}')" for y in range(20))
    db.execute(f"INSERT INTO dims VALUES {dims}")
    db.execute("ANALYZE")


def _root_q_error(db, sql: str) -> Tuple[float, List[tuple]]:
    """Run *sql* and return (root q-error, result rows)."""
    result = db.query(sql)
    record = db.query_log.entries()[-1]
    return record.q_error, result.rows


def run(
    num_rows: int = DEFAULT_ROWS,
    buffer_pages: int = 256,
    work_mem_pages: int = 32,
    seed: int = 42,
    starts: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None,
) -> List[ResultTable]:
    cold_starts, warm_starts = starts or (COLD_STARTS, WARM_STARTS)
    db = fresh_db(buffer_pages=buffer_pages, work_mem_pages=work_mem_pages)
    _load(db, num_rows)

    table = ResultTable(
        "E15 — feedback-driven estimate correction (y = x // 50)",
        [
            "query family",
            "cold median q-err",
            "warm median q-err",
            "improvement",
            "feedback keys",
            "identical rows",
        ],
        notes=(
            "cold = independence-assumption estimates while the feedback "
            "store learns; warm = use_feedback=True on fresh literals with "
            "the store frozen.  'identical rows' verifies the differential "
            "guarantee: feedback may change plans, never results."
        ),
    )

    cold_q: Dict[str, List[float]] = {name: [] for name in FAMILIES}
    warm_q: Dict[str, List[float]] = {name: [] for name in FAMILIES}

    # Phase 1 — cold planning, warm harvesting.  The Database records
    # est-vs-actual per plan node into db.feedback after every query.
    db.options = PlannerOptions()
    for name, make_sql in FAMILIES.items():
        for lo in cold_starts:
            q, _ = _root_q_error(db, make_sql(lo))
            cold_q[name].append(q)
    learned = len(db.feedback)

    # Phase 2 — corrected planning on unseen literals.  Freeze the store:
    # harvesting corrected plans would record ratio~1 observations and
    # dilute the factors while we are still measuring them.
    db.obs.feedback = False
    db.options = PlannerOptions(use_feedback=True)
    for name, make_sql in FAMILIES.items():
        for lo in warm_starts:
            q, _ = _root_q_error(db, make_sql(lo))
            warm_q[name].append(q)

    # Differential check: identical row multisets with feedback on/off.
    identical: Dict[str, bool] = {}
    for name, make_sql in FAMILIES.items():
        same = True
        for lo in warm_starts:
            sql = make_sql(lo)
            db.options = PlannerOptions(use_feedback=True)
            with_fb = sorted(db.query(sql).rows)
            db.options = PlannerOptions()
            without_fb = sorted(db.query(sql).rows)
            if with_fb != without_fb:
                same = False
                raise AssertionError(
                    f"E15: feedback changed results for {sql!r}"
                )
        identical[name] = same

    for name in FAMILIES:
        cold_med = quantile(cold_q[name], 0.5)
        warm_med = quantile(warm_q[name], 0.5)
        if not warm_med < cold_med:
            raise AssertionError(
                f"E15: median q-error did not improve for {name!r}: "
                f"cold {cold_med:.2f} vs warm {warm_med:.2f}"
            )
        table.add(
            name,
            cold_med,
            warm_med,
            Ratio(cold_med / max(warm_med, 1e-9)),
            learned,
            identical[name],
        )

    return [table]


if __name__ == "__main__":  # pragma: no cover - manual invocation
    for result_table in run():
        print(result_table.render())
        print()
