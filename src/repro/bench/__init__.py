"""Benchmark harness: measurement utilities and the E1-E10 experiments."""

from . import (
    e1_join_methods,
    e2_access_paths,
    e4_plan_quality,
    e6_estimation,
    e7_interesting_orders,
    e8_buffer_sweep,
    e9_rewrites,
    e10_wholesale,
    e11_ablations,
    e12_scaling,
    e13_batching,
    e14_parallel,
    e15_feedback,
    e16_systables,
    e18_wal,
    e19_tracing,
)
from .figures import chart_from_table, line_chart
from .measure import (
    Measurement,
    fresh_db,
    measure_plan,
    measure_query,
    plan_with_strategy,
    time_planning,
)
from .tables import (
    Ratio,
    ResultTable,
    geometric_mean,
    q_error,
    quantile,
    render_all,
)

__all__ = [
    "e1_join_methods", "e2_access_paths", "e4_plan_quality", "e6_estimation",
    "e7_interesting_orders", "e8_buffer_sweep", "e9_rewrites", "e10_wholesale",
    "e11_ablations", "e12_scaling", "e13_batching", "e14_parallel",
    "e15_feedback", "e16_systables", "e18_wal", "e19_tracing",
    "Measurement", "fresh_db", "measure_plan", "measure_query",
    "plan_with_strategy", "time_planning", "Ratio", "ResultTable",
    "geometric_mean", "q_error", "quantile", "render_all",
    "chart_from_table", "line_chart",
]
