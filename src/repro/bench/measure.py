"""Measurement helpers shared by all experiments.

The central routine is :func:`measure_plan`: run a physical plan from a
cold buffer pool and report estimated vs actual cost components.  "Actual
I/O" is page reads+writes on the simulated disk — the unit the 1977-era
cost model predicts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..engine import Database, QueryResult
from ..physical import PhysicalPlan
from ..sql import SelectStmt, parse


@dataclass
class Measurement:
    """Everything one experimental run reports."""

    rows: int
    est_rows: float
    est_cost_total: float
    est_cost_io: float
    actual_reads: int
    actual_writes: int
    exec_seconds: float
    plan_text: str
    result: Optional[QueryResult] = None

    @property
    def actual_io(self) -> int:
        return self.actual_reads + self.actual_writes

    @property
    def cardinality_q_error(self) -> float:
        from .tables import q_error

        return q_error(self.est_rows, float(self.rows))


def measure_plan(
    db: Database,
    plan: PhysicalPlan,
    keep_result: bool = False,
    analyze: bool = False,
) -> Measurement:
    """Execute *plan* cold and compare estimates with actuals.

    ``analyze=True`` runs under FULL instrumentation, so every node of
    *plan* carries ``actual_time_ms`` and attributed I/O afterwards.
    """
    result = db.run_plan(plan, cold=True, analyze=analyze)
    cost = plan.est_cost
    return Measurement(
        rows=result.rowcount,
        est_rows=plan.est_rows,
        est_cost_total=cost.total if cost is not None else 0.0,
        est_cost_io=cost.io if cost is not None else 0.0,
        actual_reads=result.io.reads,
        actual_writes=result.io.writes,
        exec_seconds=result.execution_seconds,
        plan_text=plan.pretty(actuals=True),
        result=result if keep_result else None,
    )


def measure_query(
    db: Database, sql: str, keep_result: bool = False
) -> Measurement:
    """Plan (with the database's current strategy) and measure a query."""
    plan = db.plan(sql)
    return measure_plan(db, plan, keep_result=keep_result)


def plan_with_strategy(db: Database, sql: str, strategy: str, **kwargs: Any):
    """Plan *sql* under a strategy without disturbing the DB's options."""
    from ..optimizer import PlannerOptions

    saved = db.options
    try:
        db.options = PlannerOptions(strategy=strategy, **kwargs)
        stmt = parse(sql)
        assert isinstance(stmt, SelectStmt)
        plan, stats = db.plan_select(stmt)
        return plan, stats
    finally:
        db.options = saved


def time_planning(
    db: Database, sql: str, strategy: str, repeats: int = 3, **kwargs: Any
) -> Tuple[float, Any]:
    """Median wall-clock planning time for *sql* under *strategy*."""
    times: List[float] = []
    stats = None
    for _ in range(repeats):
        start = time.perf_counter()
        _, stats = plan_with_strategy(db, sql, strategy, **kwargs)
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2], stats


def fresh_db(
    buffer_pages: int = 256, work_mem_pages: int = 16, **kwargs: Any
) -> Database:
    """A new empty database with experiment-friendly defaults."""
    return Database(
        buffer_pages=buffer_pages, work_mem_pages=work_mem_pages, **kwargs
    )
