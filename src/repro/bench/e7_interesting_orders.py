"""E7 — Interesting orders (Table 5).

Queries whose answers need an order (ORDER BY on a join column, or a
grouped aggregate on one), planned by DP with and without interesting-order
tracking.  With tracking the planner can keep a sorted-producing subplan
(index scan, merge join) and skip the final sort; without it, every plan
funnels through an explicit sort.

Reported: modeled cost, actual I/O, and whether the final plan contains a
Sort operator.
"""

from __future__ import annotations

from typing import List

from ..engine import Database
from ..optimizer import PlannerOptions
from ..physical import PSort, walk_plan
from ..sql import SelectStmt, parse
from ..workloads import Rng, shuffled_ints, uniform_floats, uniform_ints
from .measure import fresh_db, measure_plan
from .tables import ResultTable


def load_orders_tables(
    db: Database, rows_a: int = 8000, rows_b: int = 2000, seed: int = 31
) -> None:
    """`big` is physically ordered by its foreign key (clustered index on
    ``fk``), `small` by its primary key — the layout where a sort-free
    merge join exists and only order-aware planning finds it."""
    rng = Rng(seed)
    db.execute("CREATE TABLE big (id INT, fk INT, v FLOAT)")
    ids = shuffled_ints(rng.spawn(1), rows_a)
    fks = sorted(uniform_ints(rng.spawn(2), rows_a, 0, rows_b - 1))
    vs = uniform_floats(rng.spawn(3), rows_a)
    db.insert_rows("big", list(zip(ids, fks, vs)))
    db.execute("CREATE CLUSTERED INDEX ix_big_fk ON big (fk)")
    db.execute("CREATE TABLE small (id INT, w FLOAT)")
    db.insert_rows(
        "small",
        list(
            zip(
                range(rows_b),  # loaded in id order => clustered
                uniform_floats(rng.spawn(4), rows_b),
            )
        ),
    )
    db.execute("CREATE CLUSTERED INDEX ix_small_id ON small (id)")
    db.analyze()


QUERIES = [
    (
        "order by join column",
        "SELECT big.fk, small.w FROM big, small "
        "WHERE big.fk = small.id ORDER BY big.fk",
    ),
    (
        "grouped agg on join column",
        "SELECT big.fk, COUNT(*) AS n FROM big, small "
        "WHERE big.fk = small.id GROUP BY big.fk",
    ),
    (
        "order by indexed key",
        "SELECT small.id, small.w FROM small ORDER BY small.id",
    ),
]


def _plan_with_orders(db: Database, sql: str, enabled: bool):
    saved = db.options
    try:
        db.options = PlannerOptions(
            strategy="dp", use_interesting_orders=enabled
        )
        stmt = parse(sql)
        assert isinstance(stmt, SelectStmt)
        plan, _ = db.plan_select(stmt)
        return plan
    finally:
        db.options = saved


def _has_sort(plan) -> bool:
    return any(isinstance(node, PSort) for node in walk_plan(plan))


def run(
    rows_a: int = 8000, rows_b: int = 2000, seed: int = 31
) -> List[ResultTable]:
    db = fresh_db(buffer_pages=48, work_mem_pages=8)
    load_orders_tables(db, rows_a, rows_b, seed)
    table = ResultTable(
        "E7/Table 5 — interesting orders: DP with vs without order tracking",
        [
            "query",
            "orders on: cost", "orders on: I/O", "orders on: sorts",
            "orders off: cost", "orders off: I/O", "orders off: sorts",
        ],
    )
    for label, sql in QUERIES:
        row: List[object] = [label]
        results = {}
        for enabled in (True, False):
            plan = _plan_with_orders(db, sql, enabled)
            m = measure_plan(db, plan)
            results[enabled] = (m, _has_sort(plan))
        for enabled in (True, False):
            m, sorts = results[enabled]
            row.extend([m.est_cost_total, m.actual_io, sorts])
        # sanity: same answer both ways
        table.rows.append(row)
    return [table]
