"""E2 — Access-path selection crossover (Table 2) and
E3 — cost-model validation (Figure 1).

One table, three ways to read it under a selectivity sweep:

* sequential scan + filter,
* clustered B+-tree range scan (on ``id``),
* unclustered B+-tree range scan (on ``r``, random values).

The classic result: the unclustered index loses to the sequential scan at
surprisingly low selectivity (a few percent — Cardenas' formula says every
fetched row is likely a new page), while the clustered index stays
competitive to much higher selectivity.  E3 overlays the cost model's
predicted I/O on the measured I/O to validate the model's *shape*.
"""

from __future__ import annotations

from typing import List, Optional

from ..engine import Database
from ..expr import col, lit, lt
from ..physical import PIndexScan, PSeqScan, RangeBound
from ..workloads import Rng, uniform_floats, uniform_ints
from .measure import fresh_db, measure_plan
from .tables import ResultTable

PATHS = ("seq-scan", "clustered-index", "unclustered-index")


def load_sweep_table(
    db: Database, num_rows: int = 20000, seed: int = 17
) -> None:
    """Table with a clustered key ``id`` (loaded in order) and an
    unclustered uniform column ``r`` over the same domain."""
    rng = Rng(seed)
    db.execute("CREATE TABLE sweep (id INT, r INT, pad FLOAT)")
    rs = uniform_ints(rng.spawn(1), num_rows, 0, num_rows - 1)
    pads = uniform_floats(rng.spawn(2), num_rows)
    db.insert_rows(
        "sweep", [(i, rs[i], pads[i]) for i in range(num_rows)]
    )
    db.execute("CREATE CLUSTERED INDEX ix_sweep_id ON sweep (id)")
    db.execute("CREATE INDEX ix_sweep_r ON sweep (r)")
    db.execute("ANALYZE sweep")


def _path_plan(db: Database, path: str, cutoff: int):
    info = db.table("sweep")
    if path == "seq-scan":
        return PSeqScan(info, "sweep", lt(col("sweep.id"), lit(cutoff)))
    column = "id" if path == "clustered-index" else "r"
    index = info.index_on(column)
    return PIndexScan(
        info,
        "sweep",
        index,
        RangeBound.open(),
        RangeBound.at(cutoff, False),
    )


def _path_estimate(db: Database, path: str, cutoff: int, num_rows: int) -> float:
    info = db.table("sweep")
    model = db.model
    matching = float(cutoff)
    if path == "seq-scan":
        return model.seq_scan(info.num_pages, float(num_rows)).io
    column = "id" if path == "clustered-index" else "r"
    index = info.index_on(column)
    return model.index_scan(
        index, info.num_pages, float(num_rows), matching
    ).io


def run(
    num_rows: int = 20000,
    fractions: Optional[List[float]] = None,
    buffer_pages: int = 48,
    seed: int = 17,
) -> List[ResultTable]:
    """Returns [E2 table (actual I/O + planner pick), E3 table (est vs act)]."""
    if fractions is None:
        fractions = [0.0005, 0.002, 0.01, 0.05, 0.2, 0.5, 1.0]
    db = fresh_db(buffer_pages=buffer_pages, work_mem_pages=8)
    load_sweep_table(db, num_rows, seed)

    actual = ResultTable(
        "E2/Table 2 — access paths, actual page reads (cold)",
        ["selectivity", "rows"] + list(PATHS) + ["planner picks"],
        notes=f"table: {num_rows} rows, {db.table('sweep').num_pages} pages",
    )
    validation = ResultTable(
        "E3/Figure 1 — cost model I/O estimate vs actual reads",
        [
            "selectivity",
            "seq est", "seq act",
            "clustered est", "clustered act",
            "unclustered est", "unclustered act",
            "seq ms", "clustered ms", "unclustered ms",
        ],
        notes="*ms* columns: per-operator actual time of the scan node "
        "(EXPLAIN ANALYZE instrumentation)",
    )
    for fraction in fractions:
        cutoff = max(1, int(num_rows * fraction))
        act_row: List[object] = [fraction, cutoff]
        val_row: List[object] = [fraction]
        measured = {}
        timed = {}
        for path in PATHS:
            plan = _path_plan(db, path, cutoff)
            m = measure_plan(db, plan, analyze=True)
            measured[path] = m.actual_reads
            timed[path] = round(plan.actual_time_ms or 0.0, 3)
            act_row.append(m.actual_reads)
        # what would the cost-based planner pick? (clustered id predicate)
        pick = db.plan(f"SELECT * FROM sweep WHERE id < {cutoff}")
        picked = _scan_kind(pick)
        act_row.append(picked)
        actual.rows.append(act_row)
        for path in PATHS:
            val_row.append(_path_estimate(db, path, cutoff, num_rows))
            val_row.append(measured[path])
        for path in PATHS:
            val_row.append(timed[path])
        validation.rows.append(val_row)
    return [actual, validation]


def _scan_kind(plan) -> str:
    from ..physical import walk_plan

    for node in walk_plan(plan):
        name = type(node).__name__
        if name in ("PSeqScan", "PIndexScan", "PIndexOnlyScan"):
            return name[1:]
    return type(plan).__name__


def crossover_fraction(table: ResultTable, path: str) -> Optional[float]:
    """First selectivity at which *path* becomes worse than the seq scan."""
    idx_path = table.columns.index(path)
    idx_seq = table.columns.index("seq-scan")
    for row in table.rows:
        if row[idx_path] > row[idx_seq]:
            return row[0]
    return None
