"""E18 — WAL commit overhead and group commit.

Durability has exactly one hot-path cost in this engine: the fsync that
seals each COMMIT.  This experiment measures it three ways on an
insert-heavy transactional workload:

* ``no wal`` — in-memory engine, no log at all (the ceiling);
* ``wal, no fsync`` — records written but never synced (the price of
  logging itself: encoding + CRC + write);
* ``wal, fsync`` — one serial session, every COMMIT waits for its own
  fsync (the naive durable floor);
* ``wal, group commit`` — N concurrent sessions; COMMIT fsyncs happen
  outside the statement lock and ``flush_to`` double-checks the flushed
  LSN, so one fsync seals every commit appended behind it.

Expected shape: logging without fsync costs little over no-WAL; serial
fsync dominates commit latency (fsyncs/commit = 1); group commit
amortizes — fsyncs/commit drops well below 1 while every transaction
remains durable.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from typing import List, Optional, Tuple

from .measure import fresh_db
from .tables import Ratio, ResultTable

def _run_txns(session, table: str, txns: int, rows_per_txn: int) -> None:
    for t in range(txns):
        session.execute("BEGIN")
        for j in range(rows_per_txn):
            k = t * rows_per_txn + j
            session.execute(f"INSERT INTO {table} VALUES ({k}, {k % 97})")
        session.execute("COMMIT")


def _serial(db, txns: int, rows_per_txn: int) -> float:
    session = db.create_session()
    try:
        start = time.perf_counter()
        _run_txns(session, "kv0", txns, rows_per_txn)
        return time.perf_counter() - start
    finally:
        session.close()


def _concurrent(db, txns: int, rows_per_txn: int, threads: int) -> float:
    # one table per committer: table write locks are exclusive to txn
    # end, so same-table transactions would serialize and no two COMMITs
    # could ever share an fsync
    per = txns // threads
    failures: List[BaseException] = []

    def body(i: int) -> None:
        session = db.create_session()
        try:
            _run_txns(session, f"kv{i}", per, rows_per_txn)
        except BaseException as exc:  # noqa: BLE001 - surfaced by caller
            failures.append(exc)
        finally:
            session.close()

    workers = [
        threading.Thread(target=body, args=(i,)) for i in range(threads)
    ]
    start = time.perf_counter()
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    elapsed = time.perf_counter() - start
    if failures:
        raise failures[0]
    return elapsed


def _measure(
    config: str, txns: int, rows_per_txn: int, threads: int
) -> Tuple[float, int, int]:
    """(seconds, fsyncs, commits-observed) for one configuration."""
    data_dir: Optional[str] = None
    if config == "no wal":
        db = fresh_db()
    else:
        data_dir = tempfile.mkdtemp(prefix="repro-e18-")
        db = fresh_db(data_dir=data_dir, wal_sync=(config != "wal, no fsync"))
    try:
        grouped = config == "wal, group commit"
        tables = [f"kv{i}" for i in range(threads)] if grouped else ["kv0"]
        for name in tables:
            db.execute(f"CREATE TABLE {name} (k INT, v INT)")
        if db.txn.writer is not None:
            db.txn.writer.fsyncs = 0
        if grouped:
            elapsed = _concurrent(db, txns, rows_per_txn, threads)
        else:
            elapsed = _serial(db, txns, rows_per_txn)
        fsyncs = db.txn.writer.fsyncs if db.txn.writer is not None else 0
        count = sum(
            db.query(f"SELECT COUNT(*) FROM {name}").rows[0][0]
            for name in tables
        )
        expected = (txns // threads) * threads if grouped else txns
        assert count == expected * rows_per_txn, (count, config)
        return elapsed, fsyncs, expected
    finally:
        db.close()
        if data_dir is not None:
            shutil.rmtree(data_dir, ignore_errors=True)


def run(
    txns: int = 200,
    rows_per_txn: int = 5,
    threads: int = 8,
) -> List[ResultTable]:
    table = ResultTable(
        "E18 — WAL commit overhead (insert txns, durable vs not)",
        [
            "configuration",
            "commits/s",
            "fsyncs/commit",
            "slowdown vs no-wal",
        ],
        notes=(
            f"{txns} transactions x {rows_per_txn} inserts; group commit "
            f"uses {threads} concurrent sessions — COMMIT fsyncs run "
            "outside the statement lock, so one fsync seals every commit "
            "appended behind it"
        ),
    )
    configs = ("no wal", "wal, no fsync", "wal, fsync", "wal, group commit")
    baseline = None
    for config in configs:
        elapsed, fsyncs, commits = _measure(config, txns, rows_per_txn, threads)
        rate = commits / elapsed if elapsed else 0.0
        if baseline is None:
            baseline = rate
        table.add(
            config,
            round(rate, 1),
            round(fsyncs / commits, 3) if commits else 0.0,
            Ratio(baseline / rate if rate else 0.0),
        )
    return [table]
