"""ASCII line charts for the experiments that are *figures* in the paper
sense (E3 cost validation, E5 planning growth, E8 buffer sweep).

Pure-text rendering so EXPERIMENTS.md and bench output stay self-contained:

::

    I/O (log)
    1000 |                         D
         |              D
     100 |    D    C         C    C
         |  A B  A B  A B  A B  A B
      10 +--------------------------
           8    16   32   64   128   buffer pages
    A=block-NL  B=hash  C=sort-merge  D=index-NL
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

MARKERS = "ABCDEFGHJKLMNP"


def _nice_label(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.0f}"
    return f"{value:.2g}"


def line_chart(
    title: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[Optional[float]]],
    width: int = 64,
    height: int = 14,
    log_y: bool = False,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render multiple series as a scatter-line ASCII chart.

    ``None`` values are skipped (e.g. exhaustive beyond its cutoff).
    ``log_y=True`` puts the y axis on a log10 scale — planning-time and
    I/O curves span orders of magnitude.
    """
    if not x_values:
        raise ValueError("need at least one x value")
    points: List[float] = [
        v
        for values in series.values()
        for v in values
        if v is not None
    ]
    if not points:
        raise ValueError("no data")

    def ty(v: float) -> float:
        if log_y:
            return math.log10(max(v, 1e-9))
        return v

    y_min = min(ty(v) for v in points)
    y_max = max(ty(v) for v in points)
    if y_max <= y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max <= x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, values), marker in zip(series.items(), MARKERS):
        for x, v in zip(x_values, values):
            if v is None:
                continue
            cx = round((x - x_min) / (x_max - x_min) * (width - 1))
            cy = round((ty(v) - y_min) / (y_max - y_min) * (height - 1))
            row = height - 1 - cy
            cell = grid[row][cx]
            grid[row][cx] = "*" if cell not in (" ", marker) else marker

    def y_at(row: int) -> float:
        frac = (height - 1 - row) / (height - 1)
        value = y_min + frac * (y_max - y_min)
        return 10 ** value if log_y else value

    lines = [title + (f"   [y: {y_label}{', log scale' if log_y else ''}]" if y_label or log_y else "")]
    label_width = max(
        len(_nice_label(y_at(r))) for r in (0, height // 2, height - 1)
    )
    for row in range(height):
        if row in (0, height // 2, height - 1):
            label = _nice_label(y_at(row)).rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |" + "".join(grid[row]))
    lines.append(" " * label_width + " +" + "-" * width)
    # x tick labels at min / mid / max
    ticks = [x_min, (x_min + x_max) / 2, x_max]
    tick_line = [" "] * (width + label_width + 12)
    for tick in ticks:
        pos = label_width + 2 + round(
            (tick - x_min) / (x_max - x_min) * (width - 1)
        )
        text = _nice_label(tick)
        for i, ch in enumerate(text):
            if pos + i < len(tick_line):
                tick_line[pos + i] = ch
    lines.append(
        "".join(tick_line).rstrip() + (f"   {x_label}" if x_label else "")
    )
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), MARKERS)
    )
    lines.append(legend)
    return "\n".join(lines)


def chart_from_table(
    table,
    x_column: str,
    series_columns: Sequence[str],
    title: Optional[str] = None,
    **kwargs,
) -> str:
    """Build a chart straight from a :class:`ResultTable`."""
    xs = [float(v) for v in table.column_values(x_column)]
    series = {
        name: [
            float(v) if v is not None else None
            for v in table.column_values(name)
        ]
        for name in series_columns
    }
    return line_chart(title or table.title, xs, series, **kwargs)
