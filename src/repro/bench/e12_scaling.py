"""E12 — does the optimizer's win grow with data size?

The classic closing argument for cost-based optimization: at toy scale any
plan is fine (everything is cached, intermediates are small); as data
grows, the gap between the optimizer's plan and a heuristic plan widens.

Runs a three-join analytical query at increasing scale factors, planning
with DP and with the syntactic baseline, and reports wall-clock and I/O
per scale.
"""

from __future__ import annotations

from typing import List, Optional

from ..workloads import WholesaleScale, load_wholesale
from .measure import fresh_db, measure_plan, plan_with_strategy
from .tables import Ratio, ResultTable

#: the measured query: 3 joins with selective filters on BOTH small sides,
#: written in the worst syntactic order (biggest table first) — exactly the
#: query class where cost-based join ordering pays
QUERY = (
    "SELECT c.segment, COUNT(*) AS n, SUM(l.price * l.qty) AS revenue "
    "FROM lineitem l, orders o, customer c "
    "WHERE l.order_id = o.id AND o.cust_id = c.id "
    "AND o.status = 'returned' AND c.segment = 'industrial' "
    "GROUP BY c.segment"
)

SCALES = {
    "tiny": WholesaleScale.tiny(),
    "small": WholesaleScale.small(),
    "medium": WholesaleScale.medium(),
}


def run(
    scales: Optional[List[str]] = None,
    baseline: str = "syntactic",
    buffer_pages: int = 48,
    repeats: int = 2,
    seed: int = 42,
) -> List[ResultTable]:
    scales = scales or list(SCALES)
    table = ResultTable(
        f"E12 — optimizer benefit vs data scale (dp vs {baseline})",
        [
            "scale", "lineitem rows",
            "dp: I/O", f"{baseline}: I/O",
            "dp: time (ms)", f"{baseline}: time (ms)", "time ratio",
        ],
        notes=f"query: 3-way join + aggregate; buffer {buffer_pages} pages",
    )
    for scale_name in scales:
        db = fresh_db(buffer_pages=buffer_pages, work_mem_pages=12)
        counts = load_wholesale(db, SCALES[scale_name], seed=seed)
        dp_plan, _ = plan_with_strategy(db, QUERY, "dp")
        base_plan, _ = plan_with_strategy(db, QUERY, baseline)
        dp = _best_of(db, dp_plan, repeats)
        base = _best_of(db, base_plan, repeats)
        ratio = (
            base.exec_seconds / dp.exec_seconds if dp.exec_seconds else 1.0
        )
        table.add(
            scale_name,
            counts["lineitem"],
            dp.actual_io,
            base.actual_io,
            dp.exec_seconds * 1000,
            base.exec_seconds * 1000,
            Ratio(ratio),
        )
    return [table]


def _best_of(db, plan, repeats: int):
    best = None
    for _ in range(max(1, repeats)):
        m = measure_plan(db, plan)
        if best is None or m.exec_seconds < best.exec_seconds:
            best = m
    return best
