"""E4 — Plan quality across optimizer strategies (Table 3) and
E5 — planning effort vs number of relations (Figure 2).

E4: for chain/star/clique workloads, plan with every strategy, execute
each plan cold, and report modeled cost and actual page I/O; the headline
number is each baseline's I/O as a multiple of the DP plan's.

E5: planning wall-clock time and subplans considered as the number of
relations grows — DP stays polynomial-ish (chain) while exhaustive
explodes factorially and greedy stays near-linear.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..optimizer import count_dp_subsets
from ..workloads import build_shape
from .measure import fresh_db, measure_plan, plan_with_strategy, time_planning
from .tables import Ratio, ResultTable

STRATEGIES = ("dp", "dp-bushy", "greedy", "syntactic", "random", "naive")


def run_plan_quality(
    shapes: Optional[List[str]] = None,
    n: int = 5,
    base_rows: int = 600,
    buffer_pages: int = 64,
    strategies: Optional[List[str]] = None,
    seed: int = 9,
) -> List[ResultTable]:
    """Table 3: modeled cost + actual I/O per strategy per shape."""
    shapes = shapes or ["chain", "star", "clique"]
    strategies = list(strategies or STRATEGIES)
    table = ResultTable(
        "E4/Table 3 — plan quality by strategy",
        ["shape", "strategy", "est cost", "actual I/O", "vs dp"],
        notes=f"{n} relations per query; actual I/O from cold execution",
    )
    for shape in shapes:
        db = fresh_db(buffer_pages=buffer_pages, work_mem_pages=8)
        kwargs: Dict = {"seed": seed}
        if shape == "star":
            kwargs.update(fact_rows=base_rows * 4, dim_base=max(20, base_rows // 10))
        elif shape == "clique":
            kwargs.update(base_rows=max(100, base_rows // 3))
        else:
            kwargs.update(base_rows=base_rows)
        workload = build_shape(db, shape, n, **kwargs)
        dp_io: Optional[int] = None
        for strategy in strategies:
            plan, _ = plan_with_strategy(db, workload.sql, strategy)
            m = measure_plan(db, plan)
            if strategy == "dp":
                dp_io = m.actual_io
            ratio = (
                Ratio(m.actual_io / dp_io)
                if dp_io
                else None
            )
            table.add(shape, strategy, m.est_cost_total, m.actual_io, ratio)
    return [table]


def run_planning_time(
    shape: str = "chain",
    max_n: int = 8,
    base_rows: int = 120,
    strategies: Optional[List[str]] = None,
    exhaustive_limit: int = 7,
    seed: int = 10,
) -> List[ResultTable]:
    """Figure 2: planning effort growth."""
    strategies = list(strategies or ["dp", "dp-bushy", "greedy", "exhaustive"])
    timing = ResultTable(
        f"E5/Figure 2 — planning time vs relations ({shape})",
        ["n"] + [f"{s} (ms)" for s in strategies],
    )
    effort = ResultTable(
        f"E5/Figure 2b — subplans considered ({shape})",
        ["n", "connected subsets (analytic)"]
        + [f"{s} plans" for s in strategies],
    )
    for n in range(2, max_n + 1):
        db = fresh_db(buffer_pages=64, work_mem_pages=8)
        workload = build_shape(
            db, shape, n, base_rows=base_rows, seed=seed
        ) if shape != "star" else build_shape(
            db, shape, n, fact_rows=base_rows * 4, dim_base=30, seed=seed
        )
        time_row: List[object] = [n]
        effort_row: List[object] = [n, count_dp_subsets(n, shape if shape in ("chain", "star", "clique") else "chain")]
        for strategy in strategies:
            if strategy == "exhaustive" and n > exhaustive_limit:
                time_row.append(None)
                effort_row.append(None)
                continue
            seconds, stats = time_planning(db, workload.sql, strategy, repeats=3)
            time_row.append(seconds * 1000.0)
            effort_row.append(stats.plans_considered if stats else None)
        timing.rows.append(time_row)
        effort.rows.append(effort_row)
    return [timing, effort]
