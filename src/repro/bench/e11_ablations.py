"""E11 — design-choice ablations.

Two knobs DESIGN.md calls out:

* **Histogram resolution** (E11a): estimation q-error as the bucket count
  sweeps 4 → 64 on skewed data.  Expected: error falls steeply then
  plateaus — a handful of buckets buys most of the accuracy (why early
  systems could afford histograms at all).
* **Buffer replacement policy** (E11b): actual I/O of a sequential-scan
  join and an index-probe workload under LRU / Clock / MRU / FIFO.
  Expected: Clock ≈ LRU; MRU wins on repeated sequential rescans of a
  slightly-too-big inner (the classic sequential-flooding case) and loses
  on probe locality.
"""

from __future__ import annotations

from typing import List, Optional

from ..engine import Database
from ..expr import col, eq
from ..physical import PIndexNLJoin, PNestedLoopJoin, PSeqScan
from ..storage import Replacement
from ..workloads import Rng, shuffled_ints, uniform_floats, uniform_ints, zipf_ints
from .measure import fresh_db, measure_plan
from .tables import ResultTable, geometric_mean, q_error


def run_histogram_sweep(
    num_rows: int = 12000,
    domain: int = 200,
    bucket_counts: Optional[List[int]] = None,
    seed: int = 61,
) -> List[ResultTable]:
    """E11a: estimation accuracy vs histogram resolution."""
    from ..algebra import build_plan, extract_join_graph, push_down_predicates, transform_join_regions
    from ..optimizer import Estimator, EstimatorConfig, StatsResolver
    from ..sql import parse

    bucket_counts = bucket_counts or [4, 8, 16, 32, 64]
    db = fresh_db(buffer_pages=256, work_mem_pages=16)
    rng = Rng(seed)
    db.execute("CREATE TABLE z (v INT)")
    db.insert_rows(
        "z", [(x,) for x in zipf_ints(rng, num_rows, domain, skew=1.1)]
    )

    probes = [
        ("v < 3", f"SELECT COUNT(*) AS n FROM z WHERE v < 3"),
        ("v < 20", f"SELECT COUNT(*) AS n FROM z WHERE v < 20"),
        ("v BETWEEN 50 AND 99", "SELECT COUNT(*) AS n FROM z WHERE v BETWEEN 50 AND 99"),
        ("v > 150", "SELECT COUNT(*) AS n FROM z WHERE v > 150"),
        ("v = 1", "SELECT COUNT(*) AS n FROM z WHERE v = 1"),
        ("v = 120", "SELECT COUNT(*) AS n FROM z WHERE v = 120"),
    ]
    actuals = {
        label: float(db.query(sql).rows[0][0]) for label, sql in probes
    }

    from ..catalog import HistogramKind

    table = ResultTable(
        "E11a — estimation q-error vs histogram kind and bucket count (zipf data)",
        ["kind", "buckets"] + [label for label, _ in probes] + ["geo-mean"],
        notes="MCVs disabled to isolate the histogram knob",
    )
    config = EstimatorConfig(use_histograms=True, use_mcvs=False)
    for kind in (HistogramKind.EQUI_WIDTH, HistogramKind.EQUI_DEPTH):
        for buckets in bucket_counts:
            db.analyze("z", histogram=kind, num_buckets=buckets, num_mcvs=0)
            row: List[object] = [kind.value, buckets]
            errors = []
            for label, sql in probes:
                logical = push_down_predicates(
                    build_plan(parse(sql), db.catalog)
                )
                graphs: List = []
                transform_join_regions(
                    logical,
                    lambda r: graphs.append(extract_join_graph(r)) or r,
                )
                graph = graphs[0]
                estimator = Estimator(StatsResolver(graph), config)
                est = estimator.scan_rows(
                    db.table("z"), graph.filter_conjuncts("z")
                )
                err = q_error(est, actuals[label])
                errors.append(err)
                row.append(err)
            row.append(geometric_mean(errors))
            table.rows.append(row)
    return [table]


def run_replacement_policies(
    rows_big: int = 6000,
    rows_small: int = 3000,
    buffer_pages: int = 16,
    seed: int = 67,
) -> List[ResultTable]:
    """E11b: buffer replacement policy vs workload access pattern."""
    table = ResultTable(
        "E11b — buffer replacement policy, actual page reads",
        ["policy", "sequential rescans (BNL)", "random probes (index-NL)"],
        notes=f"{buffer_pages}-page pool; inner/table slightly exceeds it",
    )
    for policy in (Replacement.LRU, Replacement.CLOCK, Replacement.MRU, Replacement.FIFO):
        db = Database(
            buffer_pages=buffer_pages, work_mem_pages=6, replacement=policy
        )
        rng = Rng(seed)
        db.execute("CREATE TABLE big (id INT, fk INT)")
        db.insert_rows(
            "big",
            list(
                zip(
                    shuffled_ints(rng.spawn(1), rows_big),
                    uniform_ints(rng.spawn(2), rows_big, 0, rows_small - 1),
                )
            ),
        )
        db.execute("CREATE TABLE small (id INT, pad FLOAT)")
        db.insert_rows(
            "small",
            list(
                zip(
                    shuffled_ints(rng.spawn(3), rows_small),
                    uniform_floats(rng.spawn(4), rows_small),
                )
            ),
        )
        db.execute("CREATE INDEX ix_small_id ON small (id)")
        db.execute("ANALYZE")

        big, small = db.table("big"), db.table("small")
        bnl = PNestedLoopJoin(
            PSeqScan(big, "big"),
            PSeqScan(small, "small"),
            eq(col("big.fk"), col("small.id")),
            block_pages=4,
        )
        seq_io = measure_plan(db, bnl).actual_reads
        inl = PIndexNLJoin(
            PSeqScan(big, "big"), small, "small",
            small.index_on("id"), col("big.fk"),
        )
        probe_io = measure_plan(db, inl).actual_reads
        table.add(policy.value, seq_io, probe_io)
    return [table]


def run(**kwargs) -> List[ResultTable]:
    return run_histogram_sweep() + run_replacement_policies()
