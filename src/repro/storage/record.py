"""Row (de)serialization to the byte format stored in slotted pages.

Format per record::

    [null bitmap: ceil(ncols/8) bytes]
    per column (skipped when NULL):
        INT    -> 8 bytes signed big-endian
        FLOAT  -> 8 bytes IEEE-754 big-endian
        BOOL   -> 1 byte
        DATE   -> 4 bytes unsigned ordinal
        TEXT   -> 2-byte length prefix + UTF-8 bytes

The format is self-delimiting given the schema, which the catalog always
supplies, so records carry no schema metadata of their own.
"""

from __future__ import annotations

import struct
from datetime import date
from functools import lru_cache
from typing import Any, Optional, Sequence, Tuple

from ..types import DataType, Schema


class RecordError(Exception):
    """Raised on malformed record bytes or oversized values."""


MAX_TEXT_BYTES = 0xFFFF

_TEXT_LEN = struct.Struct(">H")

_FIXED_CODES = {
    DataType.INT: "q",
    DataType.FLOAT: "d",
    DataType.BOOL: "?",
    DataType.DATE: "I",
}


@lru_cache(maxsize=256)
def _fast_segments(dtypes: Tuple[DataType, ...]):
    """Precompiled decode plan for rows with no NULL columns.

    Consecutive fixed-width columns collapse into one ``struct.Struct``;
    TEXT columns (variable length) break the runs.  Each segment is either
    ``(struct, date_positions)`` or ``None`` for a TEXT column.
    """
    segments = []
    run: list = []
    date_positions: list = []
    for dtype in dtypes:
        code = _FIXED_CODES.get(dtype)
        if code is None:  # TEXT
            if run:
                segments.append(
                    (struct.Struct(">" + "".join(run)), tuple(date_positions))
                )
                run, date_positions = [], []
            segments.append(None)
        else:
            if dtype is DataType.DATE:
                date_positions.append(len(run))
            run.append(code)
    if run:
        segments.append(
            (struct.Struct(">" + "".join(run)), tuple(date_positions))
        )
    return tuple(segments)


def serialize_row(schema: Schema, row: Sequence[Any]) -> bytes:
    """Encode a validated row tuple into record bytes."""
    ncols = len(schema)
    bitmap = bytearray((ncols + 7) // 8)
    parts = [bytes(bitmap)]  # placeholder; replaced below
    body = bytearray()
    for i, (col, value) in enumerate(zip(schema, row)):
        if value is None:
            bitmap[i // 8] |= 1 << (i % 8)
            continue
        dtype = col.dtype
        if dtype is DataType.INT:
            body += struct.pack(">q", value)
        elif dtype is DataType.FLOAT:
            body += struct.pack(">d", value)
        elif dtype is DataType.BOOL:
            body += b"\x01" if value else b"\x00"
        elif dtype is DataType.DATE:
            body += struct.pack(">I", value.toordinal())
        elif dtype is DataType.TEXT:
            data = value.encode("utf-8")
            if len(data) > MAX_TEXT_BYTES:
                raise RecordError(f"TEXT value of {len(data)} bytes is too long")
            body += struct.pack(">H", len(data)) + data
        else:  # pragma: no cover - exhaustive over DataType
            raise RecordError(f"unhandled type {dtype}")
    parts[0] = bytes(bitmap)
    parts.append(bytes(body))
    return b"".join(parts)


def _deserialize_fast(
    dtypes: Tuple[DataType, ...], data: bytes, pos: int
) -> Optional[Tuple[Any, ...]]:
    """Decode a record known to have no NULLs; None on length mismatch
    (caller falls back to the checked column-by-column path)."""
    values: list = []
    try:
        for segment in _fast_segments(dtypes):
            if segment is None:  # TEXT
                (length,) = _TEXT_LEN.unpack_from(data, pos)
                pos += 2
                raw = data[pos : pos + length]
                if len(raw) != length:
                    return None
                values.append(raw.decode("utf-8"))
                pos += length
            else:
                fixed, date_positions = segment
                part = fixed.unpack_from(data, pos)
                if date_positions:
                    part = list(part)
                    for j in date_positions:
                        part[j] = date.fromordinal(part[j])
                values.extend(part)
                pos += fixed.size
    except struct.error:
        return None
    if pos != len(data):
        return None
    return tuple(values)


def deserialize_row(schema: Schema, data: bytes) -> Tuple[Any, ...]:
    """Decode record bytes back into a row tuple."""
    ncols = len(schema)
    bitmap_len = (ncols + 7) // 8
    if len(data) < bitmap_len:
        raise RecordError("record shorter than its null bitmap")
    bitmap = data[:bitmap_len]
    pos = bitmap_len
    if not int.from_bytes(bitmap, "big"):
        # no NULLs: take the precompiled fixed-layout fast path
        row = _deserialize_fast(schema.dtypes(), data, pos)
        if row is not None:
            return row
    values = []
    for i, col in enumerate(schema):
        if bitmap[i // 8] & (1 << (i % 8)):
            values.append(None)
            continue
        dtype = col.dtype
        try:
            if dtype is DataType.INT:
                (v,) = struct.unpack_from(">q", data, pos)
                pos += 8
            elif dtype is DataType.FLOAT:
                (v,) = struct.unpack_from(">d", data, pos)
                pos += 8
            elif dtype is DataType.BOOL:
                v = data[pos] != 0
                pos += 1
            elif dtype is DataType.DATE:
                (ordinal,) = struct.unpack_from(">I", data, pos)
                v = date.fromordinal(ordinal)
                pos += 4
            elif dtype is DataType.TEXT:
                (length,) = struct.unpack_from(">H", data, pos)
                pos += 2
                raw = data[pos : pos + length]
                if len(raw) != length:
                    raise RecordError("truncated TEXT payload")
                v = raw.decode("utf-8")
                pos += length
            else:  # pragma: no cover
                raise RecordError(f"unhandled type {dtype}")
        except struct.error as exc:
            raise RecordError(f"truncated record: {exc}") from exc
        values.append(v)
    if pos != len(data):
        raise RecordError(f"{len(data) - pos} trailing bytes after record")
    return tuple(values)


def record_size(schema: Schema, row: Sequence[Any]) -> int:
    """Exact serialized size of *row* without building the bytes twice."""
    ncols = len(schema)
    size = (ncols + 7) // 8
    for col, value in zip(schema, row):
        if value is None:
            continue
        dtype = col.dtype
        if dtype is DataType.INT or dtype is DataType.FLOAT:
            size += 8
        elif dtype is DataType.BOOL:
            size += 1
        elif dtype is DataType.DATE:
            size += 4
        elif dtype is DataType.TEXT:
            size += 2 + len(value.encode("utf-8"))
    return size
