"""Slotted-page layout over a raw page image.

Layout::

    header:  [num_slots: u16][free_space_offset: u16]
    slots:   num_slots * [offset: u16][length: u16]   (grows forward)
    records: packed at the tail of the page           (grows backward)

A deleted slot has length 0xFFFF (tombstone); its slot number is never
reused so RIDs stay stable.  ``compact()`` squeezes out dead space without
renumbering live slots.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

HEADER_SIZE = 4
SLOT_SIZE = 4
TOMBSTONE = 0xFFFF


class PageError(Exception):
    """Raised on page-level corruption or capacity violations."""


class SlottedPage:
    """A view over a mutable page image (``bytearray``)."""

    def __init__(self, data: bytearray):
        self.data = data

    # -- header accessors -------------------------------------------------------

    @property
    def num_slots(self) -> int:
        return struct.unpack_from(">H", self.data, 0)[0]

    @num_slots.setter
    def num_slots(self, n: int) -> None:
        struct.pack_into(">H", self.data, 0, n)

    @property
    def free_offset(self) -> int:
        """Start of the record heap (records live at [free_offset, page_end))."""
        return struct.unpack_from(">H", self.data, 2)[0]

    @free_offset.setter
    def free_offset(self, off: int) -> None:
        struct.pack_into(">H", self.data, 2, off)

    @classmethod
    def format(cls, data: bytearray) -> "SlottedPage":
        """Initialize a fresh page image."""
        page = cls(data)
        page.num_slots = 0
        page.free_offset = len(data)
        return page

    # -- slot accessors -----------------------------------------------------------

    def _slot(self, slot_no: int) -> Tuple[int, int]:
        if not 0 <= slot_no < self.num_slots:
            raise PageError(f"slot {slot_no} out of range (have {self.num_slots})")
        return struct.unpack_from(">HH", self.data, HEADER_SIZE + slot_no * SLOT_SIZE)

    def _set_slot(self, slot_no: int, offset: int, length: int) -> None:
        struct.pack_into(
            ">HH", self.data, HEADER_SIZE + slot_no * SLOT_SIZE, offset, length
        )

    # -- capacity -------------------------------------------------------------------

    def free_space(self) -> int:
        """Bytes available for one more record *including* its new slot."""
        slots_end = HEADER_SIZE + self.num_slots * SLOT_SIZE
        return self.free_offset - slots_end

    def can_fit(self, record_len: int) -> bool:
        return self.free_space() >= record_len + SLOT_SIZE

    # -- record operations -------------------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Insert a record, returning its slot number.

        ``num_slots`` is published *last*: a concurrent reader that
        observes the old slot count simply misses the new record, while
        one that observes the new count finds a fully written slot entry
        and record bytes — never a half-initialized slot.
        """
        if not self.can_fit(len(record)):
            raise PageError("page full")
        slot_no = self.num_slots
        new_off = self.free_offset - len(record)
        self.data[new_off : new_off + len(record)] = record
        self._set_slot(slot_no, new_off, len(record))
        self.free_offset = new_off
        self.num_slots = slot_no + 1
        return slot_no

    def place_at(self, slot_no: int, record: bytes) -> bool:
        """Place *record* at exactly *slot_no*, extending the slot
        directory with tombstones if needed.  Returns False when the page
        lacks space (caller falls back to a fresh insert elsewhere).

        Two callers need exact slot placement: WAL redo (a committed
        insert's RID must come back identical even when interleaved
        uncommitted inserts — which are *not* replayed — consumed the
        slots in between) and rollback's undo-of-delete (restoring the
        row under its original RID keeps undo idempotent).
        """
        current = self.num_slots
        if slot_no < current:
            offset, length = self._slot(slot_no)
            if length != TOMBSTONE:
                raise PageError(f"slot {slot_no} already occupied")
            new_slots = 0
        else:
            new_slots = slot_no + 1 - current
        slots_end = HEADER_SIZE + (current + new_slots) * SLOT_SIZE
        if self.free_offset - slots_end < len(record):
            return False
        for filler in range(current, current + new_slots):
            self._set_slot(filler, 0, TOMBSTONE)
        new_off = self.free_offset - len(record)
        self.data[new_off : new_off + len(record)] = record
        self._set_slot(slot_no, new_off, len(record))
        self.free_offset = new_off
        if new_slots:
            self.num_slots = current + new_slots
        return True

    def read(self, slot_no: int) -> Optional[bytes]:
        """Record bytes, or ``None`` for a tombstone."""
        offset, length = self._slot(slot_no)
        if length == TOMBSTONE:
            return None
        return bytes(self.data[offset : offset + length])

    def delete(self, slot_no: int) -> bool:
        """Tombstone a record.  Returns False if already deleted."""
        offset, length = self._slot(slot_no)
        if length == TOMBSTONE:
            return False
        self._set_slot(slot_no, 0, TOMBSTONE)
        return True

    def update(self, slot_no: int, record: bytes) -> bool:
        """In-place update.  Returns False if the new record does not fit in
        the old record's footprint (caller must delete+reinsert elsewhere)."""
        offset, length = self._slot(slot_no)
        if length == TOMBSTONE:
            raise PageError(f"slot {slot_no} is deleted")
        if len(record) > length:
            return False
        self.data[offset : offset + len(record)] = record
        self._set_slot(slot_no, offset, len(record))
        return True

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(slot_no, record_bytes)`` for every live record."""
        for slot_no in range(self.num_slots):
            rec = self.read(slot_no)
            if rec is not None:
                yield slot_no, rec

    def live_count(self) -> int:
        return sum(1 for _ in self.records())

    def compact(self) -> None:
        """Re-pack live records at the tail, reclaiming dead space.

        Slot numbers are preserved (tombstones keep their slots), only the
        record heap is rewritten.
        """
        live: List[Tuple[int, bytes]] = list(self.records())
        end = len(self.data)
        for slot_no, rec in live:
            end -= len(rec)
            self.data[end : end + len(rec)] = rec
            self._set_slot(slot_no, end, len(rec))
        self.free_offset = end
