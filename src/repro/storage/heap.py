"""Heap files: unordered collections of records over slotted pages.

A heap file owns one disk file.  Records are addressed by RID
``(page_no, slot_no)``.  Inserts go to the last page with room (tracked via
a tiny in-memory free-space hint); scans walk pages in order through the
buffer pool, so sequential scans cost exactly ``num_pages`` reads on a cold
pool.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..types import Schema
from .buffer import BufferPool, PageGuard
from .page import SlottedPage
from .record import deserialize_row, serialize_row

RID = Tuple[int, int]  # (page_no, slot_no)


class HeapError(Exception):
    """Raised on invalid RIDs or oversized records."""


class HeapFile:
    """An unordered record file with stable RIDs."""

    def __init__(self, pool: BufferPool, schema: Schema, name: str):
        self.pool = pool
        self.schema = schema
        self.name = name
        self.file_id = pool.disk.create_file(name)
        # Free-space hints: page numbers that recently had room.  Purely an
        # optimization — correctness never depends on it.
        self._insert_hint: Optional[int] = None
        self._num_rows = 0
        #: transaction hooks (a ``repro.wal.TxnManager``), attached by the
        #: catalog.  Each mutation reports itself so the active transaction
        #: can log redo and record undo; with no active transaction the
        #: hooks are no-ops (transient tables, recovery, undo itself).
        self.hooks = None

    # -- geometry ---------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self.pool.disk.num_pages(self.file_id)

    @property
    def num_rows(self) -> int:
        return self._num_rows

    # -- mutation ----------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> RID:
        """Validate, serialize and store a row; returns its RID."""
        stored = self.schema.validate_row(row)
        record = serialize_row(self.schema, stored)
        max_record = self.pool.disk.page_size - 64
        if len(record) > max_record:
            raise HeapError(
                f"record of {len(record)} bytes exceeds page capacity"
            )
        page_no = self._find_space(len(record))
        page_id = (self.file_id, page_no)
        with PageGuard(self.pool, page_id, write=True) as data:
            slot_no = SlottedPage(data).insert(record)
        self._insert_hint = page_no
        self._num_rows += 1
        if self.hooks is not None:
            self.hooks.on_insert(self.name, page_id, slot_no, record)
        return (page_no, slot_no)

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> List[RID]:
        return [self.insert(row) for row in rows]

    def delete(self, rid: RID) -> bool:
        page_no, slot_no = rid
        self._check_page(page_no)
        with PageGuard(self.pool, (self.file_id, page_no), write=True) as data:
            page = SlottedPage(data)
            old = page.read(slot_no)
            deleted = page.delete(slot_no)
        if deleted:
            self._num_rows -= 1
            self._insert_hint = None  # page gained space but needs compaction
            if self.hooks is not None:
                self.hooks.on_delete(
                    self.name, (self.file_id, page_no), slot_no, old
                )
        return deleted

    def update(self, rid: RID, row: Sequence[Any]) -> RID:
        """Update in place when possible, else delete + reinsert (new RID)."""
        stored = self.schema.validate_row(row)
        record = serialize_row(self.schema, stored)
        page_no, slot_no = rid
        self._check_page(page_no)
        with PageGuard(self.pool, (self.file_id, page_no), write=True) as data:
            page = SlottedPage(data)
            old = page.read(slot_no)
            updated = page.update(slot_no, record)
        if updated:
            if self.hooks is not None:
                self.hooks.on_update(
                    self.name, (self.file_id, page_no), slot_no, record, old
                )
            return rid
        self.delete(rid)
        return self.insert(row)

    # -- access ------------------------------------------------------------------

    def fetch(self, rid: RID) -> Optional[Tuple[Any, ...]]:
        """The row at *rid*, or None if it was deleted."""
        page_no, slot_no = rid
        self._check_page(page_no)
        with PageGuard(self.pool, (self.file_id, page_no)) as data:
            record = SlottedPage(data).read(slot_no)
        if record is None:
            return None
        return deserialize_row(self.schema, record)

    def page_bytes(self, page_no: int) -> bytes:
        """Snapshot one page's raw bytes (fixed, copied, released).

        The columnar scan decodes pages outside the page guard, so the
        pin is never held across decode or consumer work.
        """
        self._check_page(page_no)
        with PageGuard(self.pool, (self.file_id, page_no)) as data:
            return bytes(data)

    def scan(
        self, first_page: int = 0, last_page: Optional[int] = None
    ) -> Iterator[Tuple[RID, Tuple[Any, ...]]]:
        """Scan pages ``[first_page, last_page)`` in order as ``(rid, row)``.

        Defaults to a full scan.  The page-range form is how parallel
        workers split a heap: disjoint ranges in worker order concatenate
        to exactly the full-scan order.
        """
        if last_page is None:
            last_page = self.num_pages
        for page_no in range(first_page, min(last_page, self.num_pages)):
            page_id = (self.file_id, page_no)
            with PageGuard(self.pool, page_id) as data:
                page = SlottedPage(data)
                rows = [
                    ((page_no, slot_no), deserialize_row(self.schema, rec))
                    for slot_no, rec in page.records()
                ]
            # Yield outside the guard so the pin is not held across
            # consumer work (consumers may fix other pages).
            for item in rows:
                yield item

    def scan_rows(
        self, first_page: int = 0, last_page: Optional[int] = None
    ) -> Iterator[Tuple[Any, ...]]:
        for _, row in self.scan(first_page, last_page):
            yield row

    # -- internals -----------------------------------------------------------------

    def _check_page(self, page_no: int) -> None:
        if not 0 <= page_no < self.num_pages:
            raise HeapError(f"page {page_no} out of range for heap {self.name}")

    def _find_space(self, record_len: int) -> int:
        """Page number with room for *record_len*, allocating if needed."""
        candidates: List[int] = []
        if self._insert_hint is not None and self._insert_hint < self.num_pages:
            candidates.append(self._insert_hint)
        last = self.num_pages - 1
        if last >= 0 and last not in candidates:
            candidates.append(last)
        for page_no in candidates:
            page_id = (self.file_id, page_no)
            with PageGuard(self.pool, page_id) as data:
                if SlottedPage(data).can_fit(record_len):
                    return page_no
        page_id = self.pool.new_page(self.file_id)
        _, page_no = page_id
        SlottedPage.format(self.pool.fix(page_id))
        self.pool.unfix(page_id, dirty=True)
        self.pool.unfix(page_id, dirty=True)  # release new_page's pin too
        if self.hooks is not None:
            self.hooks.on_alloc(self.name, page_id)
        return page_no

    # -- recovery / rollback entry points --------------------------------------
    #
    # The replay_* methods apply one physiological WAL record verbatim:
    # no schema validation, no hooks (recovery and undo must never re-log),
    # no free-space search — the record says exactly which page and slot.
    #
    # All of them are *idempotent*: a fuzzy checkpoint's page images may
    # already reflect some records of the redo suffix (redo starts at the
    # minimum recLSN over dirty pages, which can lie before the flush
    # point of other pages), so replaying onto an already-current page
    # must be a no-op that later suffix records converge over.

    def replay_alloc(self, page_no: int) -> None:
        """Redo a page allocation.  Idempotent — but a fuzzy checkpoint
        can capture a page whose allocation record came from a then-open
        transaction: the disk file already has the page, yet its image is
        all zeros (the in-pool formatting was never flushed, by no-steal).
        Such a page is formatted here so later replays can land on it."""
        if page_no < self.num_pages:
            page_id = (self.file_id, page_no)
            with PageGuard(self.pool, page_id, write=True) as data:
                if SlottedPage(data).free_offset == 0:
                    SlottedPage.format(data)
            return
        if page_no != self.num_pages:
            raise HeapError(
                f"alloc replay out of order: want page {self.num_pages}, "
                f"record says {page_no}"
            )
        page_id = self.pool.new_page(self.file_id)
        SlottedPage.format(self.pool.fix(page_id))
        self.pool.unfix(page_id, dirty=True)
        self.pool.unfix(page_id, dirty=True)

    def replay_insert(self, page_no: int, slot_no: int, record: bytes) -> None:
        self._check_page(page_no)
        with PageGuard(self.pool, (self.file_id, page_no), write=True) as data:
            page = SlottedPage(data)
            if slot_no < page.num_slots and page.read(slot_no) is not None:
                # the image already reflects this insert (possibly with a
                # later in-place update's bytes, which also replay)
                return
            if not page.place_at(slot_no, record):
                page.compact()
                if not page.place_at(slot_no, record):
                    raise HeapError(
                        f"insert replay does not fit at ({page_no}, {slot_no})"
                    )
        self._num_rows += 1

    def replay_update(self, page_no: int, slot_no: int, record: bytes) -> None:
        self._check_page(page_no)
        with PageGuard(self.pool, (self.file_id, page_no), write=True) as data:
            page = SlottedPage(data)
            if slot_no >= page.num_slots or page.read(slot_no) is None:
                # the image reflects a later delete of this slot, whose
                # record replays after us — nothing to update yet
                return
            if not page.update(slot_no, record):
                # the slot's footprint shrank (a later shorter record, or
                # compaction): reopen it at the full record size
                page.delete(slot_no)
                if not page.place_at(slot_no, record):
                    page.compact()
                    if not page.place_at(slot_no, record):
                        raise HeapError(
                            f"update replay does not fit at "
                            f"({page_no}, {slot_no})"
                        )

    def replay_delete(self, page_no: int, slot_no: int) -> None:
        self._check_page(page_no)
        with PageGuard(self.pool, (self.file_id, page_no), write=True) as data:
            page = SlottedPage(data)
            if slot_no >= page.num_slots:
                return  # the insert this delete undoes was never applied
            deleted = page.delete(slot_no)
        if deleted:
            self._num_rows -= 1

    def restore(self, rid: RID, row: Sequence[Any]) -> RID:
        """Put a row back under its original RID (rollback's undo of a
        delete).

        Keeping the RID stable matters beyond index hygiene: redo records
        written *after* a rollback address rows by (page, slot), so undo
        must leave the committed rows where the log believes they are.
        When the page's free region is too small, the page is compacted
        first — the row's own tombstoned bytes are reclaimable dead
        space, so after compaction it always fits.  The plain-insert
        fallback is kept as a last resort for out-of-range pages.
        """
        stored = self.schema.validate_row(row)
        record = serialize_row(self.schema, stored)
        page_no, slot_no = rid
        if 0 <= page_no < self.num_pages:
            page_id = (self.file_id, page_no)
            with PageGuard(self.pool, page_id, write=True) as data:
                page = SlottedPage(data)
                if not page.place_at(slot_no, record):
                    page.compact()
                    if not page.place_at(slot_no, record):
                        raise HeapError(
                            f"cannot restore row at ({page_no}, {slot_no}) "
                            "even after compaction"
                        )
                self._num_rows += 1
                return rid
        return self.insert(row)

    def recount(self) -> int:
        """Recompute the cached row count from the pages (recovery's
        authoritative pass after replay)."""
        count = 0
        for page_no in range(self.num_pages):
            with PageGuard(self.pool, (self.file_id, page_no)) as data:
                count += SlottedPage(data).live_count()
        self._num_rows = count
        return count
