"""Storage substrate: simulated disk, slotted pages, heap files, buffer pool."""

from .buffer import BufferError_, BufferPool, BufferStats, PageGuard, Replacement
from .disk import PAGE_SIZE, DiskError, DiskManager, IOStats, PageId
from .heap import RID, HeapError, HeapFile
from .page import PageError, SlottedPage
from .record import RecordError, deserialize_row, record_size, serialize_row
from .zonemap import ZoneMaps, page_skipper

__all__ = [
    "BufferError_",
    "BufferPool",
    "BufferStats",
    "PageGuard",
    "Replacement",
    "PAGE_SIZE",
    "DiskError",
    "DiskManager",
    "IOStats",
    "PageId",
    "RID",
    "HeapError",
    "HeapFile",
    "PageError",
    "SlottedPage",
    "RecordError",
    "deserialize_row",
    "record_size",
    "serialize_row",
    "ZoneMaps",
    "page_skipper",
]
