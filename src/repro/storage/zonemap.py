"""Page-level zone maps: per-page per-column (min, max) summaries.

A zone map lets a sequential scan prove that a page cannot contain any
row satisfying a sargable predicate *before* the page is fixed into the
buffer pool — the classic "small materialized aggregates" trick.  Each
page tracks, for every column, the (min, max) of its **non-NULL**
values; an entry of ``None`` means the page holds no non-NULL value for
that column (either the page is empty or every value is NULL), which
makes the page skippable by *any* ``col OP const`` conjunct (a NULL
operand can never satisfy a comparison).

Zone maps are built by ``ANALYZE`` (a page-aware heap scan) and widened
on every subsequent insert/update routed through the catalog.  They are
*conservative*: widening never shrinks a range, and deletes leave the
map untouched, so the recorded range is always a superset of the live
values — skipping stays sound, it just gets less effective until the
next ``ANALYZE`` rebuilds tight bounds.  Code that writes to a table's
heap directly (bypassing the catalog) must drop the table's zone maps.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..expr.analysis import sargable_conjuncts, split_conjuncts
from ..expr.nodes import CmpOp, ColumnRef, Expr, InList, Literal

#: (min, max) over a page's non-NULL values, or None when there are none
ZoneEntry = Optional[Tuple[Any, Any]]


class ZoneMaps:
    """Per-page, per-column (min, max) bounds for one heap file."""

    __slots__ = ("ncols", "pages")

    def __init__(self, ncols: int):
        self.ncols = ncols
        self.pages: List[List[ZoneEntry]] = []

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    def _page(self, page_no: int) -> List[ZoneEntry]:
        while len(self.pages) <= page_no:
            self.pages.append([None] * self.ncols)
        return self.pages[page_no]

    def widen(self, page_no: int, row: Sequence[Any]) -> None:
        """Fold one stored row into page *page_no*'s bounds."""
        page = self._page(page_no)
        for i, value in enumerate(row):
            if value is None:
                continue
            entry = page[i]
            if entry is None:
                page[i] = (value, value)
            else:
                lo, hi = entry
                if value < lo:
                    lo = value
                if value > hi:
                    hi = value
                page[i] = (lo, hi)

    def entry(self, page_no: int, position: int) -> ZoneEntry:
        if page_no >= len(self.pages):
            return None
        return self.pages[page_no][position]

    def summary(self) -> Tuple[int, int]:
        """(pages mapped, column entries with non-NULL bounds)."""
        bounded = sum(
            1 for page in self.pages for e in page if e is not None
        )
        return len(self.pages), bounded


# -- skip tests ---------------------------------------------------------------
#
# For each supported conjunct shape we derive a test over a page's
# (lo, hi) entry that returns True when NO row on the page can satisfy
# the conjunct.  Mixed-type comparisons may raise TypeError; callers
# treat that as "cannot prove, do not skip".


def _const_test(op: CmpOp, v: Any) -> Optional[Callable[[Any, Any], bool]]:
    if op is CmpOp.EQ:
        return lambda lo, hi: v < lo or v > hi
    if op is CmpOp.NE:
        return lambda lo, hi: lo == hi == v
    if op is CmpOp.LT:
        return lambda lo, hi: lo >= v
    if op is CmpOp.LE:
        return lambda lo, hi: lo > v
    if op is CmpOp.GT:
        return lambda lo, hi: hi <= v
    if op is CmpOp.GE:
        return lambda lo, hi: hi < v
    return None


def _in_list_test(conjunct: Expr) -> Optional[Tuple[str, Callable]]:
    """``col IN (literals)`` skips a page when no non-NULL item falls in
    the page's range.  Negated IN is never used for skipping (a NULL item
    makes it unsatisfiable everywhere, which folding already handles)."""
    if not isinstance(conjunct, InList) or conjunct.negated:
        return None
    if not isinstance(conjunct.operand, ColumnRef):
        return None
    values = []
    for item in conjunct.items:
        if not isinstance(item, Literal):
            return None
        if item.value is not None:
            values.append(item.value)

    def test(lo: Any, hi: Any) -> bool:
        return not any(lo <= v <= hi for v in values)

    return conjunct.operand.name, test


def page_skipper(
    predicate: Optional[Expr], schema, zones: ZoneMaps
) -> Optional[Callable[[int], bool]]:
    """Build ``skip(page_no) -> bool`` from the sargable conjuncts of
    *predicate*, or ``None`` when nothing is provable from zone maps."""
    if predicate is None:
        return None
    conjuncts = split_conjuncts(predicate)
    tests: List[Tuple[int, Callable[[Any, Any], bool]]] = []
    for conjunct, cls in sargable_conjuncts(conjuncts):
        test = _const_test(cls.op, cls.value)
        if test is None or not schema.has_column(cls.column):
            continue
        tests.append((schema.index_of(cls.column), test))
    for conjunct in conjuncts:
        in_test = _in_list_test(conjunct)
        if in_test is not None and schema.has_column(in_test[0]):
            tests.append((schema.index_of(in_test[0]), in_test[1]))
    if not tests:
        return None

    def skip(page_no: int) -> bool:
        if page_no >= zones.num_pages:
            return False  # page appended since the map was built
        page = zones.pages[page_no]
        for position, test in tests:
            entry = page[position]
            if entry is None:
                return True  # no non-NULL values: col OP const is NULL
            try:
                if test(entry[0], entry[1]):
                    return True
            except TypeError:
                continue  # incomparable types: cannot prove, keep page
        return False

    return skip
