"""Simulated disk: page-granular storage with exact I/O accounting.

The 1977-era cost models this library reproduces reason almost entirely in
units of *page fetches*.  The paper's testbed hardware is unavailable, so the
substrate is a simulated disk: a dict of page images plus counters that
record every read and write.  The buffer manager sits on top; the executor's
"actual cost" numbers in the benchmark harness are these counters.

Pages are ``bytearray`` images of a fixed size.  A :class:`DiskManager` owns
many *files* (one per heap file or index), each an append-only sequence of
pages addressed by ``(file_id, page_no)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Default page size.  Small enough that laptop-scale tables span many pages
#: (so I/O counts are meaningful), large enough to hold tens of records.
PAGE_SIZE = 4096

PageId = Tuple[int, int]  # (file_id, page_no)


class DiskError(Exception):
    """Raised on out-of-range page access."""


@dataclass
class IOStats:
    """Cumulative I/O counters.  ``reads``/``writes`` are physical page I/Os;
    ``seq_reads`` counts the subset issued sequentially (page_no exactly one
    past the previous read of the same file), which lets experiments separate
    sequential from random access patterns."""

    reads: int = 0
    writes: int = 0
    seq_reads: int = 0
    allocations: int = 0

    def snapshot(self) -> "IOStats":
        return IOStats(self.reads, self.writes, self.seq_reads, self.allocations)

    def delta(self, earlier: "IOStats") -> "IOStats":
        return IOStats(
            self.reads - earlier.reads,
            self.writes - earlier.writes,
            self.seq_reads - earlier.seq_reads,
            self.allocations - earlier.allocations,
        )

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IOStats(reads={self.reads}, writes={self.writes}, "
            f"seq_reads={self.seq_reads}, allocs={self.allocations})"
        )


@dataclass
class _File:
    name: str
    pages: List[bytearray] = field(default_factory=list)
    last_read: int = -2  # page_no of the most recent read, for seq detection


class DiskManager:
    """All persistent pages of one database instance."""

    def __init__(self, page_size: int = PAGE_SIZE):
        if page_size < 64:
            raise ValueError("page size too small to hold a page header")
        self.page_size = page_size
        self.stats = IOStats()
        self._files: Dict[int, _File] = {}
        self._next_file_id = 0

    # -- file lifecycle -------------------------------------------------------

    def create_file(self, name: str) -> int:
        file_id = self._next_file_id
        self._next_file_id += 1
        self._files[file_id] = _File(name)
        return file_id

    def drop_file(self, file_id: int) -> None:
        self._files.pop(file_id, None)

    def file_name(self, file_id: int) -> str:
        return self._file(file_id).name

    def num_pages(self, file_id: int) -> int:
        return len(self._file(file_id).pages)

    def file_ids(self) -> List[int]:
        return list(self._files)

    def _file(self, file_id: int) -> _File:
        try:
            return self._files[file_id]
        except KeyError:
            raise DiskError(f"no such file: {file_id}") from None

    # -- page I/O --------------------------------------------------------------

    def allocate_page(self, file_id: int) -> PageId:
        """Append a zeroed page; counts as one write (formatting the page)."""
        f = self._file(file_id)
        page_no = len(f.pages)
        f.pages.append(bytearray(self.page_size))
        self.stats.allocations += 1
        self.stats.writes += 1
        return (file_id, page_no)

    def read_page(self, page_id: PageId) -> bytearray:
        """Fetch a page image from 'disk'.  Returns a *copy*: the caller (the
        buffer pool) owns the in-memory image until it writes it back."""
        file_id, page_no = page_id
        f = self._file(file_id)
        if not 0 <= page_no < len(f.pages):
            raise DiskError(f"page {page_no} out of range for file {f.name}")
        self.stats.reads += 1
        if page_no == f.last_read + 1:
            self.stats.seq_reads += 1
        f.last_read = page_no
        return bytearray(f.pages[page_no])

    def write_page(self, page_id: PageId, data: bytes) -> None:
        file_id, page_no = page_id
        f = self._file(file_id)
        if not 0 <= page_no < len(f.pages):
            raise DiskError(f"page {page_no} out of range for file {f.name}")
        if len(data) != self.page_size:
            raise DiskError(
                f"page image is {len(data)} bytes, expected {self.page_size}"
            )
        self.stats.writes += 1
        f.pages[page_no] = bytearray(data)

    # -- snapshot/restore (checkpointing; bypasses the I/O counters) -------------

    def page_images(self, file_id: int) -> List[bytearray]:
        """Direct references to a file's page images, in page order.

        Used by the checkpointer to stream a consistent snapshot (the
        buffer pool is flushed first, and no transaction is in flight),
        and by tests asserting byte-level page state.  Deliberately not
        counted as reads: a checkpoint is maintenance, not query I/O.
        """
        return list(self._file(file_id).pages)

    def restore_pages(self, file_id: int, images: List[bytes]) -> None:
        """Replace a file's pages wholesale from snapshot *images*.

        Recovery-only: installs a checkpoint's page images under a
        freshly created (empty) file.  Not counted in the I/O stats —
        recovery happens before any measured workload.
        """
        f = self._file(file_id)
        if f.pages:
            raise DiskError(
                f"restore into non-empty file {f.name} ({len(f.pages)} pages)"
            )
        for image in images:
            if len(image) != self.page_size:
                raise DiskError(
                    f"snapshot page is {len(image)} bytes, "
                    f"expected {self.page_size}"
                )
            f.pages.append(bytearray(image))

    # -- metrics ----------------------------------------------------------------

    def reset_stats(self) -> None:
        self.stats = IOStats()
        for f in self._files.values():
            f.last_read = -2
