"""Buffer manager: a fixed set of frames between the executor and the disk.

The pool implements the classic pin/unpin protocol with pluggable
replacement policies (LRU, Clock, MRU, FIFO).  Every physical operator does
its page access through here, so buffer-pool hit rates — and therefore the
buffer-size-sensitivity experiments (E8) — fall out of real mechanism, not
modeling.

Frames hold ``bytearray`` page images.  A dirty frame is written back when
evicted or on ``flush_all``.

The pool is thread-safe: a single reentrant lock serializes every public
entry point, so concurrent pin/unpin/read from multiple threads can never
interleave a lookup with an eviction (the classic fix-vs-evict race) or
lose stats increments.  Parallel query *workers* are separate processes
with their own pool, so they never contend on this lock — it exists for
in-process threading (tests, future background writers) and costs one
uncontended acquire per call.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional

from ..qa import faults
from .disk import DiskManager, PageId


class BufferError_(Exception):
    """Raised when the pool cannot satisfy a fix request."""


class Replacement(enum.Enum):
    LRU = "lru"
    CLOCK = "clock"
    MRU = "mru"
    FIFO = "fifo"


@dataclass
class BufferStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> "BufferStats":
        return BufferStats(
            self.hits, self.misses, self.evictions, self.dirty_writebacks
        )

    def delta(self, earlier: "BufferStats") -> "BufferStats":
        return BufferStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.evictions - earlier.evictions,
            self.dirty_writebacks - earlier.dirty_writebacks,
        )


class _TimedRLock:
    """Reentrant lock that attributes *contended* acquisitions to a wait
    registry (``lock.buffer``).  The fast path — the lock is free or
    already held by this thread — costs one non-blocking try, the same as
    a plain ``with lock:``; only a genuinely blocked acquire pays two
    clock reads.  ``waits=None`` (the default) disables timing entirely.
    """

    __slots__ = ("_lock", "waits")

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.waits = None  # a repro.obs.WaitEventStats, attached by the engine

    def __enter__(self) -> "_TimedRLock":
        if not self._lock.acquire(blocking=False):
            waits = self.waits
            if waits is None:
                self._lock.acquire()
            else:
                start = time.perf_counter()
                self._lock.acquire()
                waits.record("lock.buffer", time.perf_counter() - start)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._lock.release()


class _Frame:
    __slots__ = ("page_id", "data", "pin_count", "dirty", "referenced")

    def __init__(self, page_id: PageId, data: bytearray):
        self.page_id = page_id
        self.data = data
        self.pin_count = 0
        self.dirty = False
        self.referenced = True  # for Clock


class BufferPool:
    """A bounded cache of disk pages with pin/unpin semantics."""

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = 64,
        policy: Replacement = Replacement.LRU,
    ):
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self.policy = policy
        self.stats = BufferStats()
        # OrderedDict gives us LRU/MRU/FIFO ordering cheaply; for Clock we
        # sweep it with a persistent hand index.
        self._frames: "OrderedDict[PageId, _Frame]" = OrderedDict()
        self._clock_hand = 0
        # Reentrant so internal helpers may call public methods (new_page
        # formatting paths fix/unfix while already holding the lock).
        # Contended acquisitions are timed when a wait registry is attached.
        self._lock = _TimedRLock()
        #: no-steal hook: ``evict_guard(page_id) -> bool`` vetoes evicting
        #: pages dirtied by an active transaction (attached by the engine's
        #: transaction manager; None = every unpinned frame is fair game)
        self.evict_guard = None
        #: WAL-before-data hook, called with the page id right before a
        #: dirty frame's image goes down to disk
        self.write_hook = None
        #: called with the page id right after a dirty frame's image
        #: reached disk (the transaction manager clears the page's recLSN
        #: so fuzzy checkpoints can compute their redo start point)
        self.clean_hook = None

    @property
    def waits(self):
        """The attached wait-event registry (None = wait accounting off)."""
        return self._lock.waits

    @waits.setter
    def waits(self, registry) -> None:
        self._lock.waits = registry

    # -- public protocol -----------------------------------------------------------

    def fix(self, page_id: PageId) -> bytearray:
        """Pin a page and return its in-pool image (mutable, shared)."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.stats.hits += 1
                self._touch(frame)
            else:
                self.stats.misses += 1
                self._ensure_capacity()
                waits = self._lock.waits
                if waits is None:
                    data = self.disk.read_page(page_id)
                else:
                    start = time.perf_counter()
                    data = self.disk.read_page(page_id)
                    waits.record("io.read", time.perf_counter() - start)
                frame = _Frame(page_id, data)
                self._frames[page_id] = frame
            frame.pin_count += 1
            return frame.data

    def unfix(self, page_id: PageId, dirty: bool = False) -> None:
        """Release one pin; mark the frame dirty if the caller modified it."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or frame.pin_count <= 0:
                raise BufferError_(f"unfix of page {page_id} that is not pinned")
            frame.pin_count -= 1
            if dirty:
                frame.dirty = True

    def new_page(self, file_id: int) -> PageId:
        """Allocate a fresh page on disk and fix it (pinned, zeroed)."""
        with self._lock:
            page_id = self.disk.allocate_page(file_id)
            self._ensure_capacity()
            frame = _Frame(page_id, bytearray(self.disk.page_size))
            frame.pin_count = 1
            frame.dirty = True
            self._frames[page_id] = frame
            return page_id

    def flush_all(self) -> None:
        with self._lock:
            for frame in self._frames.values():
                self._writeback(frame)

    def clear(self) -> None:
        """Flush and drop every unpinned frame (used between experiments so
        runs start cold).  Frames vetoed by the no-steal guard are kept
        in place, neither written nor dropped — uncommitted bytes must
        never reach the disk image."""
        with self._lock:
            pinned = [f for f in self._frames.values() if f.pin_count > 0]
            if pinned:
                raise BufferError_(f"{len(pinned)} frames still pinned")
            kept = {}
            for pid, frame in self._frames.items():
                if (
                    frame.dirty
                    and self.evict_guard is not None
                    and not self.evict_guard(pid)
                ):
                    kept[pid] = frame
                    continue
                self._writeback(frame)
            self._frames = OrderedDict(kept)
            self._clock_hand = 0

    def dirty_pages(self) -> list:
        """Page ids of every dirty frame (a fuzzy checkpoint's worklist)."""
        with self._lock:
            return [pid for pid, f in self._frames.items() if f.dirty]

    def flush_page(self, page_id: PageId) -> bool:
        """Write one dirty frame back (keeping it cached).  Returns True
        if a write happened."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or not frame.dirty:
                return False
            self._writeback(frame)
            return True

    def discard_file(self, file_id: int) -> None:
        """Drop every frame of *file_id* without writeback (the file is
        being deleted).  Must be called before the disk file is dropped."""
        with self._lock:
            doomed = [pid for pid in self._frames if pid[0] == file_id]
            for pid in doomed:
                frame = self._frames[pid]
                if frame.pin_count > 0:
                    raise BufferError_(
                        f"page {pid} of dropped file still pinned"
                    )
                del self._frames[pid]
            self._clock_hand = 0

    def pinned_pages(self) -> Iterator[PageId]:
        with self._lock:
            return iter(
                [pid for pid, f in self._frames.items() if f.pin_count > 0]
            )

    def contains(self, page_id: PageId) -> bool:
        with self._lock:
            return page_id in self._frames

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = BufferStats()

    # -- internals --------------------------------------------------------------------

    def _touch(self, frame: _Frame) -> None:
        frame.referenced = True
        if self.policy in (Replacement.LRU, Replacement.MRU):
            self._frames.move_to_end(frame.page_id)
        # FIFO and CLOCK do not reorder on access.

    def _ensure_capacity(self) -> None:
        if len(self._frames) < self.capacity:
            return
        victim = self._choose_victim()
        self._writeback(victim)
        del self._frames[victim.page_id]
        self.stats.evictions += 1

    def _evictable(self, frame: _Frame) -> bool:
        if frame.pin_count > 0:
            return False
        # no-steal: a dirty page belonging to an in-flight transaction
        # must not reach disk before that transaction resolves
        if (
            frame.dirty
            and self.evict_guard is not None
            and not self.evict_guard(frame.page_id)
        ):
            return False
        return True

    def _choose_victim(self) -> _Frame:
        if self.policy is Replacement.CLOCK:
            return self._clock_victim()
        frames = list(self._frames.values())
        order = reversed(frames) if self.policy is Replacement.MRU else iter(frames)
        for frame in order:
            if self._evictable(frame):
                return frame
        raise BufferError_("all frames pinned or transaction-dirty; cannot evict")

    def _clock_victim(self) -> _Frame:
        frames = list(self._frames.values())
        n = len(frames)
        sweeps = 0
        while sweeps < 2 * n + 1:
            frame = frames[self._clock_hand % n]
            self._clock_hand = (self._clock_hand + 1) % n
            sweeps += 1
            if not self._evictable(frame):
                continue
            if frame.referenced:
                frame.referenced = False
                continue
            return frame
        raise BufferError_("all frames pinned or transaction-dirty; cannot evict")

    def _writeback(self, frame: _Frame) -> None:
        if frame.dirty:
            if self.write_hook is not None:
                self.write_hook(frame.page_id)
            action = faults.FAILPOINTS.hit("page.writeback")
            waits = self._lock.waits
            if waits is None:
                self.disk.write_page(frame.page_id, bytes(frame.data))
            else:
                start = time.perf_counter()
                self.disk.write_page(frame.page_id, bytes(frame.data))
                waits.record("io.write", time.perf_counter() - start)
            frame.dirty = False
            self.stats.dirty_writebacks += 1
            if self.clean_hook is not None:
                self.clean_hook(frame.page_id)
            if action is not None:
                faults.crash()


class PageGuard:
    """Context manager for exception-safe fix/unfix.

    ::

        with PageGuard(pool, page_id) as data:
            ... read data ...
        with PageGuard(pool, page_id, write=True) as data:
            ... mutate data ...
    """

    def __init__(self, pool: BufferPool, page_id: PageId, write: bool = False):
        self.pool = pool
        self.page_id = page_id
        self.write = write
        self._data: Optional[bytearray] = None

    def __enter__(self) -> bytearray:
        self._data = self.pool.fix(self.page_id)
        return self._data

    def __exit__(self, exc_type, exc, tb) -> None:
        self.pool.unfix(self.page_id, dirty=self.write and exc_type is None)
