"""Static hash index: equality-only lookups with O(1) expected page I/O.

Buckets are pages holding ``(key, rid)`` entries; overflow pages chain off a
full bucket.  The directory (bucket page numbers) is kept in memory — an
era-faithful simplification (directories were small and memory-resident).

Provides no range scans; the access-path selector only offers a hash index
for equality predicates.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, List, Optional, Tuple

from ..storage import RID, BufferPool, PageGuard
from ..types import DataType
from .keys import deserialize_key, key_size, serialize_key

_BUCKET_HEADER = 7  # [nkeys:u16][overflow+1:u32][pad:u8]


class HashIndexError(Exception):
    pass


def _hash_key(key: Any) -> int:
    # Stable across runs (unlike str hash with PYTHONHASHSEED).
    if isinstance(key, str):
        h = 2166136261
        for b in key.encode("utf-8"):
            h = ((h ^ b) * 16777619) & 0xFFFFFFFF
        return h
    if isinstance(key, float) and key.is_integer():
        key = int(key)
    return hash(key) & 0xFFFFFFFF


class HashIndex:
    """Fixed-bucket-count hash index with overflow chaining."""

    def __init__(
        self,
        pool: BufferPool,
        dtype: DataType,
        name: str,
        num_buckets: int = 64,
    ):
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        self.pool = pool
        self.dtype = dtype
        self.name = name
        self.num_buckets = num_buckets
        self.file_id = pool.disk.create_file(f"hash:{name}")
        self._num_entries = 0
        self._buckets: List[int] = []
        for _ in range(num_buckets):
            page_no = self._alloc_page()
            self._write_bucket(page_no, [], None)
            self._buckets.append(page_no)

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def num_pages(self) -> int:
        return self.pool.disk.num_pages(self.file_id)

    def insert(self, key: Any, rid: RID) -> None:
        if key is None:
            raise HashIndexError("hash index cannot store NULL keys")
        page_no = self._buckets[_hash_key(key) % self.num_buckets]
        while True:
            entries, overflow = self._read_bucket(page_no)
            entries.append((key, rid))
            if self._bucket_bytes(entries) <= self.pool.disk.page_size:
                self._write_bucket(page_no, entries, overflow)
                self._num_entries += 1
                return
            entries.pop()
            if overflow is None:
                overflow = self._alloc_page()
                self._write_bucket(overflow, [], None)
                self._write_bucket(page_no, entries, overflow)
            page_no = overflow

    def delete(self, key: Any, rid: RID) -> bool:
        if key is None:
            return False
        page_no: Optional[int] = self._buckets[_hash_key(key) % self.num_buckets]
        while page_no is not None:
            entries, overflow = self._read_bucket(page_no)
            try:
                entries.remove((key, rid))
            except ValueError:
                page_no = overflow
                continue
            self._write_bucket(page_no, entries, overflow)
            self._num_entries -= 1
            return True
        return False

    def search(self, key: Any) -> List[RID]:
        """All RIDs stored under *key* (chasing overflow pages)."""
        if key is None:
            return []
        out: List[RID] = []
        page_no: Optional[int] = self._buckets[_hash_key(key) % self.num_buckets]
        while page_no is not None:
            entries, overflow = self._read_bucket(page_no)
            out.extend(rid for k, rid in entries if k == key)
            page_no = overflow
        return out

    def items(self) -> Iterator[Tuple[Any, RID]]:
        for bucket in self._buckets:
            page_no: Optional[int] = bucket
            while page_no is not None:
                entries, overflow = self._read_bucket(page_no)
                for entry in entries:
                    yield entry
                page_no = overflow

    def avg_chain_length(self) -> float:
        """Mean number of pages per bucket chain (1.0 = no overflow)."""
        total = 0
        for bucket in self._buckets:
            page_no: Optional[int] = bucket
            while page_no is not None:
                total += 1
                _, page_no = self._read_bucket_header(page_no)
        return total / self.num_buckets

    # -- page I/O ------------------------------------------------------------------

    def _alloc_page(self) -> int:
        page_id = self.pool.new_page(self.file_id)
        self.pool.unfix(page_id, dirty=True)
        return page_id[1]

    def _bucket_bytes(self, entries: List[Tuple[Any, RID]]) -> int:
        return _BUCKET_HEADER + sum(
            key_size(k, self.dtype) + 6 for k, _ in entries
        )

    def _write_bucket(
        self, page_no: int, entries: List[Tuple[Any, RID]], overflow: Optional[int]
    ) -> None:
        buf = bytearray()
        buf += struct.pack(">H", len(entries))
        buf += struct.pack(">I", 0 if overflow is None else overflow + 1)
        buf.append(0)
        for key, (rpage, rslot) in entries:
            buf += serialize_key(key, self.dtype)
            buf += struct.pack(">IH", rpage, rslot)
        if len(buf) > self.pool.disk.page_size:
            raise HashIndexError("bucket overflow not caught by caller")
        with PageGuard(self.pool, (self.file_id, page_no), write=True) as data:
            data[: len(buf)] = buf
            for i in range(len(buf), len(data)):
                data[i] = 0

    def _read_bucket(
        self, page_no: int
    ) -> Tuple[List[Tuple[Any, RID]], Optional[int]]:
        with PageGuard(self.pool, (self.file_id, page_no)) as data:
            view = bytes(data)
        (nkeys,) = struct.unpack_from(">H", view, 0)
        (over_raw,) = struct.unpack_from(">I", view, 2)
        pos = _BUCKET_HEADER
        entries: List[Tuple[Any, RID]] = []
        for _ in range(nkeys):
            key, pos = deserialize_key(view, pos)
            rpage, rslot = struct.unpack_from(">IH", view, pos)
            pos += 6
            entries.append((key, (rpage, rslot)))
        return entries, None if over_raw == 0 else over_raw - 1

    def _read_bucket_header(self, page_no: int) -> Tuple[int, Optional[int]]:
        with PageGuard(self.pool, (self.file_id, page_no)) as data:
            (nkeys,) = struct.unpack_from(">H", data, 0)
            (over_raw,) = struct.unpack_from(">I", data, 2)
        return nkeys, None if over_raw == 0 else over_raw - 1
