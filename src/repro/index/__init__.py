"""Index substrate: page-based B+-tree and static hash index."""

from .bptree import BPlusTree, BPTreeError
from .hashindex import HashIndex, HashIndexError
from .keys import KeyError_, deserialize_key, entry_lt, key_lt, key_size, serialize_key

__all__ = [
    "BPlusTree",
    "BPTreeError",
    "HashIndex",
    "HashIndexError",
    "KeyError_",
    "deserialize_key",
    "entry_lt",
    "key_lt",
    "key_size",
    "serialize_key",
]
