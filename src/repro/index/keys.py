"""Index key serialization.

Index keys are single-column typed values (era-faithful: the systems this
paper's lineage describes index one attribute per access path).  Keys are
serialized with a one-byte tag so NULLs and type mixups are detectable, and
compared *before* serialization using the engine's comparison rules — the
byte format does not need to be order-preserving.
"""

from __future__ import annotations

import struct
from datetime import date
from typing import Any, Tuple

from ..types import DataType

_TAG_NULL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_TEXT = 3
_TAG_BOOL = 4
_TAG_DATE = 5


class KeyError_(Exception):
    """Raised on malformed key bytes."""


def serialize_key(value: Any, dtype: DataType) -> bytes:
    if value is None:
        return bytes([_TAG_NULL])
    if dtype is DataType.INT:
        return bytes([_TAG_INT]) + struct.pack(">q", value)
    if dtype is DataType.FLOAT:
        return bytes([_TAG_FLOAT]) + struct.pack(">d", value)
    if dtype is DataType.BOOL:
        return bytes([_TAG_BOOL, 1 if value else 0])
    if dtype is DataType.DATE:
        return bytes([_TAG_DATE]) + struct.pack(">I", value.toordinal())
    if dtype is DataType.TEXT:
        data = value.encode("utf-8")
        if len(data) > 0xFFFF:
            raise KeyError_("TEXT key too long")
        return bytes([_TAG_TEXT]) + struct.pack(">H", len(data)) + data
    raise KeyError_(f"unhandled type {dtype}")  # pragma: no cover


def deserialize_key(data: bytes, offset: int) -> Tuple[Any, int]:
    """Decode one key at *offset*; returns ``(value, next_offset)``."""
    tag = data[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_INT:
        (v,) = struct.unpack_from(">q", data, offset)
        return v, offset + 8
    if tag == _TAG_FLOAT:
        (v,) = struct.unpack_from(">d", data, offset)
        return v, offset + 8
    if tag == _TAG_BOOL:
        return data[offset] != 0, offset + 1
    if tag == _TAG_DATE:
        (ordinal,) = struct.unpack_from(">I", data, offset)
        return date.fromordinal(ordinal), offset + 4
    if tag == _TAG_TEXT:
        (length,) = struct.unpack_from(">H", data, offset)
        offset += 2
        raw = data[offset : offset + length]
        if len(raw) != length:
            raise KeyError_("truncated TEXT key")
        return raw.decode("utf-8"), offset + length
    raise KeyError_(f"bad key tag {tag}")


def key_size(value: Any, dtype: DataType) -> int:
    if value is None:
        return 1
    if dtype is DataType.INT or dtype is DataType.FLOAT:
        return 9
    if dtype is DataType.BOOL:
        return 2
    if dtype is DataType.DATE:
        return 5
    if dtype is DataType.TEXT:
        return 3 + len(value.encode("utf-8"))
    raise KeyError_(f"unhandled type {dtype}")  # pragma: no cover


class _Sentinel:
    """Bounds helper comparing below (MIN_KEY) or above (MAX_KEY) every
    real value.  Used to express open components of composite-key ranges;
    never stored in an index."""

    __slots__ = ("low", "name")

    def __init__(self, low: bool, name: str):
        self.low = low
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


MIN_KEY = _Sentinel(True, "MIN_KEY")
MAX_KEY = _Sentinel(False, "MAX_KEY")


def key_lt(a: Any, b: Any) -> bool:
    """Total order used inside index nodes: NULLs sort first (but after
    MIN_KEY); composite keys compare lexicographically component-wise, a
    shorter prefix sorting before its extensions."""
    if isinstance(a, _Sentinel):
        if isinstance(b, _Sentinel):
            return a.low and not b.low
        return a.low
    if isinstance(b, _Sentinel):
        return not b.low
    if isinstance(a, tuple) and isinstance(b, tuple):
        for x, y in zip(a, b):
            if key_lt(x, y):
                return True
            if key_lt(y, x):
                return False
        return len(a) < len(b)
    if a is None:
        return b is not None
    if b is None:
        return False
    return a < b


def key_eq(a: Any, b: Any) -> bool:
    """Equality in the same total order (NULL == NULL here)."""
    return not key_lt(a, b) and not key_lt(b, a)


def entry_lt(a: Tuple[Any, Tuple[int, int]], b: Tuple[Any, Tuple[int, int]]) -> bool:
    """Order on (key, rid) pairs: by key, ties broken by rid."""
    if key_lt(a[0], b[0]):
        return True
    if key_lt(b[0], a[0]):
        return False
    return a[1] < b[1]
