"""A page-based B+-tree index.

Nodes live in disk pages and are accessed through the buffer pool, so every
index probe and range scan incurs real, countable page I/O — the quantity
the cost model prices (root-to-leaf descent plus leaf chain).

Design choices (documented, deliberately classic):

* Single-column keys; duplicates allowed (entries ordered by ``(key, rid)``).
* Leaves are chained left-to-right for range scans.
* Deletion is by simple removal from the leaf without rebalancing ("lazy
  deletion"), as in many production systems; underfull nodes are tolerated.
* Nodes are re-serialized wholesale on modification.  Simple, correct, and
  plenty fast at laptop scale; the I/O counts are unaffected.

Page formats::

    leaf:     [0x01][nkeys:u16][next_leaf+1:u32] entries*
              entry = key_bytes + page:u32 + slot:u16
    internal: [0x02][nkeys:u16] children = (nkeys+1)*u32, then nkeys keys
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from ..storage import RID, BufferPool, PageGuard
from ..types import DataType
from .keys import deserialize_key, entry_lt, key_lt, key_size, serialize_key

_LEAF = 0x01
_INTERNAL = 0x02

_LEAF_HEADER = 7
_INTERNAL_HEADER = 3


class BPTreeError(Exception):
    """Raised on structural violations."""


@dataclass
class _Leaf:
    entries: List[Tuple[Any, RID]]
    next_leaf: Optional[int]  # page_no of right sibling


@dataclass
class _Internal:
    keys: List[Any]
    children: List[int]  # page numbers, len == len(keys) + 1


class _SortKey:
    """Adapter making key_lt usable with bisect/insort."""

    __slots__ = ("v",)

    def __init__(self, v: Any):
        self.v = v

    def __lt__(self, other: "_SortKey") -> bool:
        return key_lt(self.v, other.v)


class _SortEntry:
    __slots__ = ("e",)

    def __init__(self, e: Tuple[Any, RID]):
        self.e = e

    def __lt__(self, other: "_SortEntry") -> bool:
        return entry_lt(self.e, other.e)


class BPlusTree:
    """B+-tree over ``(key, rid)`` entries with real page I/O."""

    def __init__(self, pool: BufferPool, dtype, name: str):
        """*dtype* is a single DataType (scalar keys) or a sequence of
        DataTypes (composite keys stored as tuples)."""
        self.pool = pool
        if isinstance(dtype, DataType):
            self.dtypes: Tuple[DataType, ...] = (dtype,)
            self.composite = False
        else:
            self.dtypes = tuple(dtype)
            self.composite = len(self.dtypes) > 1
            if not self.dtypes:
                raise BPTreeError("index needs at least one key column")
        self.dtype = self.dtypes[0]
        self.name = name
        self.file_id = pool.disk.create_file(f"index:{name}")
        self._num_entries = 0
        self._height = 1
        root = self._alloc_node()
        self._write_leaf(root, _Leaf([], None))
        self.root_page = root

    # -- public API ---------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def height(self) -> int:
        """Number of levels root..leaf (1 = root is a leaf)."""
        return self._height

    @property
    def num_pages(self) -> int:
        return self.pool.disk.num_pages(self.file_id)

    def num_leaf_pages(self) -> int:
        """Count leaf pages by walking the chain (costs I/O; used by ANALYZE)."""
        count = 0
        page_no: Optional[int] = self._leftmost_leaf()
        while page_no is not None:
            leaf = self._read_leaf(page_no)
            count += 1
            page_no = leaf.next_leaf
        return count

    def insert(self, key: Any, rid: RID) -> None:
        """Insert one entry.  Duplicate keys are allowed."""
        split = self._insert_into(self.root_page, self._height, key, rid)
        if split is not None:
            sep_key, right_page = split
            new_root = self._alloc_node()
            self._write_internal(
                new_root, _Internal([sep_key], [self.root_page, right_page])
            )
            self.root_page = new_root
            self._height += 1
        self._num_entries += 1

    def delete(self, key: Any, rid: RID) -> bool:
        """Remove the exact ``(key, rid)`` entry.  Returns False if absent."""
        page_no = self._descend_to_leaf(key)
        while page_no is not None:
            leaf = self._read_leaf(page_no)
            i = bisect_left([_SortEntry(e) for e in leaf.entries], _SortEntry((key, rid)))
            if i < len(leaf.entries) and leaf.entries[i] == (key, rid):
                del leaf.entries[i]
                self._write_leaf(page_no, leaf)
                self._num_entries -= 1
                return True
            if leaf.entries and key_lt(key, leaf.entries[-1][0]):
                return False
            page_no = leaf.next_leaf
        return False

    def search(self, key: Any) -> List[RID]:
        """All RIDs with exactly *key*."""
        return [rid for _, rid in self.range_scan(key, key, True, True)]

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Tuple[Any, RID]]:
        """Entries with ``low (<|<=) key (<|<=) high`` in key order.

        ``low=None`` / ``high=None`` leave that side unbounded.  NULL keys are
        never returned by bounded scans (SQL semantics: comparisons with NULL
        are unknown) but appear in fully unbounded scans.
        """
        bounded = low is not None or high is not None
        if low is None:
            page_no: Optional[int] = self._leftmost_leaf()
            start_key = None
        else:
            page_no = self._descend_to_leaf(low)
            start_key = low
        while page_no is not None:
            leaf = self._read_leaf(page_no)
            keys = [_SortKey(k) for k, _ in leaf.entries]
            if start_key is not None:
                probe = _SortKey(start_key)
                i = (
                    bisect_left(keys, probe)
                    if low_inclusive
                    else bisect_right(keys, probe)
                )
            else:
                i = 0
            for key, rid in leaf.entries[i:]:
                if key is None:
                    if bounded:
                        continue
                    yield key, rid
                    continue
                if high is not None:
                    if high_inclusive:
                        if key_lt(high, key):
                            return
                    elif not key_lt(key, high):
                        return
                yield key, rid
            start_key = None  # only the first leaf needs offsetting
            page_no = leaf.next_leaf

    def items(self) -> Iterator[Tuple[Any, RID]]:
        return self.range_scan(None, None)

    def validate(self) -> None:
        """Structural integrity check used by tests: ordering within leaves,
        chain ordering, separator correctness, entry count."""
        seen = 0
        prev: Optional[Tuple[Any, RID]] = None
        for entry in self.items():
            if prev is not None and entry_lt(entry, prev):
                raise BPTreeError(f"entries out of order: {prev} then {entry}")
            prev = entry
            seen += 1
        if seen != self._num_entries:
            raise BPTreeError(
                f"entry count mismatch: walked {seen}, recorded {self._num_entries}"
            )
        self._validate_node(self.root_page, self._height, None, None)

    # -- insertion internals ---------------------------------------------------------

    def _insert_into(
        self, page_no: int, level: int, key: Any, rid: RID
    ) -> Optional[Tuple[Any, int]]:
        """Insert below *page_no* (at *level*, 1=leaf).  On split, returns
        ``(separator_key, new_right_page)`` for the parent to absorb."""
        if level == 1:
            leaf = self._read_leaf(page_no)
            wrapped = [_SortEntry(e) for e in leaf.entries]
            i = bisect_left(wrapped, _SortEntry((key, rid)))
            leaf.entries.insert(i, (key, rid))
            if self._leaf_bytes(leaf) <= self._capacity():
                self._write_leaf(page_no, leaf)
                return None
            return self._split_leaf(page_no, leaf)
        node = self._read_internal(page_no)
        child_idx = bisect_right([_SortKey(k) for k in node.keys], _SortKey(key))
        split = self._insert_into(node.children[child_idx], level - 1, key, rid)
        if split is None:
            return None
        sep_key, right_page = split
        node.keys.insert(child_idx, sep_key)
        node.children.insert(child_idx + 1, right_page)
        if self._internal_bytes(node) <= self._capacity():
            self._write_internal(page_no, node)
            return None
        return self._split_internal(page_no, node)

    def _split_leaf(self, page_no: int, leaf: _Leaf) -> Tuple[Any, int]:
        mid = len(leaf.entries) // 2
        right = _Leaf(leaf.entries[mid:], leaf.next_leaf)
        right_page = self._alloc_node()
        left = _Leaf(leaf.entries[:mid], right_page)
        self._write_leaf(right_page, right)
        self._write_leaf(page_no, left)
        return right.entries[0][0], right_page

    def _split_internal(self, page_no: int, node: _Internal) -> Tuple[Any, int]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal(node.keys[mid + 1 :], node.children[mid + 1 :])
        left = _Internal(node.keys[:mid], node.children[: mid + 1])
        right_page = self._alloc_node()
        self._write_internal(right_page, right)
        self._write_internal(page_no, left)
        return sep, right_page

    # -- navigation ----------------------------------------------------------------------

    def _descend_to_leaf(self, key: Any) -> int:
        page_no = self.root_page
        for _ in range(self._height - 1):
            node = self._read_internal(page_no)
            idx = bisect_left([_SortKey(k) for k in node.keys], _SortKey(key))
            page_no = node.children[idx]
        return page_no

    def _leftmost_leaf(self) -> int:
        page_no = self.root_page
        for _ in range(self._height - 1):
            page_no = self._read_internal(page_no).children[0]
        return page_no

    # -- node I/O -------------------------------------------------------------------------

    def _capacity(self) -> int:
        return self.pool.disk.page_size

    def _alloc_node(self) -> int:
        page_id = self.pool.new_page(self.file_id)
        self.pool.unfix(page_id, dirty=True)
        return page_id[1]

    def _key_bytes(self, key: Any) -> int:
        if self.composite:
            return sum(key_size(k, t) for k, t in zip(key, self.dtypes))
        return key_size(key, self.dtype)

    def _leaf_bytes(self, leaf: _Leaf) -> int:
        return _LEAF_HEADER + sum(
            self._key_bytes(k) + 6 for k, _ in leaf.entries
        )

    def _internal_bytes(self, node: _Internal) -> int:
        return (
            _INTERNAL_HEADER
            + 4 * len(node.children)
            + sum(self._key_bytes(k) for k in node.keys)
        )

    def _write_leaf(self, page_no: int, leaf: _Leaf) -> None:
        buf = bytearray()
        buf.append(_LEAF)
        buf += struct.pack(">H", len(leaf.entries))
        buf += struct.pack(">I", 0 if leaf.next_leaf is None else leaf.next_leaf + 1)
        for key, (rpage, rslot) in leaf.entries:
            buf += self._serialize_key(key)
            buf += struct.pack(">IH", rpage, rslot)
        self._store(page_no, buf)

    def _write_internal(self, page_no: int, node: _Internal) -> None:
        buf = bytearray()
        buf.append(_INTERNAL)
        buf += struct.pack(">H", len(node.keys))
        for child in node.children:
            buf += struct.pack(">I", child)
        for key in node.keys:
            buf += self._serialize_key(key)
        self._store(page_no, buf)

    def _store(self, page_no: int, buf: bytearray) -> None:
        if len(buf) > self.pool.disk.page_size:
            raise BPTreeError("node overflows page after split — key too large")
        with PageGuard(self.pool, (self.file_id, page_no), write=True) as data:
            data[: len(buf)] = buf
            # zero the tail so stale bytes never alias a valid entry
            for i in range(len(buf), len(data)):
                data[i] = 0

    def _serialize_key(self, key: Any) -> bytes:
        if self.composite:
            return b"".join(
                serialize_key(k, t) for k, t in zip(key, self.dtypes)
            )
        return serialize_key(key, self.dtype)

    def _deserialize_key(self, view: bytes, pos: int):
        if self.composite:
            parts = []
            for _ in self.dtypes:
                value, pos = deserialize_key(view, pos)
                parts.append(value)
            return tuple(parts), pos
        return deserialize_key(view, pos)

    def _read_leaf(self, page_no: int) -> _Leaf:
        with PageGuard(self.pool, (self.file_id, page_no)) as data:
            if data[0] != _LEAF:
                raise BPTreeError(f"page {page_no} is not a leaf")
            (nkeys,) = struct.unpack_from(">H", data, 1)
            (next_raw,) = struct.unpack_from(">I", data, 3)
            pos = _LEAF_HEADER
            entries: List[Tuple[Any, RID]] = []
            view = bytes(data)
            for _ in range(nkeys):
                key, pos = self._deserialize_key(view, pos)
                rpage, rslot = struct.unpack_from(">IH", view, pos)
                pos += 6
                entries.append((key, (rpage, rslot)))
        return _Leaf(entries, None if next_raw == 0 else next_raw - 1)

    def _read_internal(self, page_no: int) -> _Internal:
        with PageGuard(self.pool, (self.file_id, page_no)) as data:
            if data[0] != _INTERNAL:
                raise BPTreeError(f"page {page_no} is not internal")
            (nkeys,) = struct.unpack_from(">H", data, 1)
            pos = _INTERNAL_HEADER
            view = bytes(data)
            children = []
            for _ in range(nkeys + 1):
                (child,) = struct.unpack_from(">I", view, pos)
                children.append(child)
                pos += 4
            keys = []
            for _ in range(nkeys):
                key, pos = self._deserialize_key(view, pos)
                keys.append(key)
        return _Internal(keys, children)

    # -- validation internals ------------------------------------------------------------

    def _validate_node(
        self, page_no: int, level: int, low: Any, high: Any
    ) -> None:
        if level == 1:
            leaf = self._read_leaf(page_no)
            for key, _ in leaf.entries:
                if low is not None and key_lt(key, low):
                    raise BPTreeError(f"leaf key {key!r} below separator {low!r}")
                if high is not None and not key_lt(key, high) and key != high:
                    # duplicates equal to the separator may sit on either side
                    if key_lt(high, key):
                        raise BPTreeError(
                            f"leaf key {key!r} above separator {high!r}"
                        )
            return
        node = self._read_internal(page_no)
        if len(node.children) != len(node.keys) + 1:
            raise BPTreeError("internal fanout mismatch")
        for i, key in enumerate(node.keys):
            if i > 0 and key_lt(key, node.keys[i - 1]):
                raise BPTreeError("internal keys out of order")
        bounds = [low] + node.keys + [high]
        for i, child in enumerate(node.children):
            self._validate_node(child, level - 1, bounds[i], bounds[i + 1])
