"""Brute-force reference evaluation for differential testing.

The :class:`Reference` evaluator answers queries over plain Python lists
of dict rows by materializing cross products and filtering in Python —
no planner, no operators, no buffer pool.  Slow and obviously correct,
which is the point: any divergence between it and the engine is an
engine bug.

:func:`approx_rows` canonicalizes result sets for comparison: floats are
rounded (so reference arithmetic and engine arithmetic, which may sum in
different orders, agree) and rows are sorted by ``repr`` (so unordered
queries compare as multisets).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Sequence, Tuple


def approx_rows(rows: Sequence[Sequence[Any]]) -> List[Tuple[Any, ...]]:
    """Canonical multiset form of a result: floats rounded to 6 places,
    rows sorted by ``repr`` (mixed types sort without TypeError)."""
    out = []
    for row in rows:
        out.append(
            tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        )
    return sorted(out, key=repr)


class Reference:
    """Brute-force evaluation over plain Python lists of dict rows."""

    def __init__(self, tables: Dict[str, List[Dict[str, Any]]]):
        self.tables = tables  # name -> list of dict rows

    def join(
        self, bindings: Sequence[Tuple[str, str]]
    ) -> Iterator[Dict[str, Any]]:
        """Cross product of the bound tables as ``binding.column`` dicts.

        *bindings* is a list of ``(binding_name, table_name)`` pairs, so
        self-joins bind the same table twice under different names.
        """
        names = [b for b, _ in bindings]
        lists = [self.tables[t] for _, t in bindings]
        for combo in itertools.product(*lists):
            row: Dict[str, Any] = {}
            for binding, partial in zip(names, combo):
                for key, value in partial.items():
                    row[f"{binding}.{key}"] = value
            yield row
