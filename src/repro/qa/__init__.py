"""Quality-assurance toolkit: reference evaluation and random query
generation for differential testing.

:mod:`.reference` holds the brute-force evaluator that the differential
tests compare the engine against; :mod:`.randomqueries` generates seeded
random query workloads (SQL paired with a reference answer) and emits
self-contained repro scripts for failures.
"""

from .randomqueries import (
    QueryCase,
    RandomWorkload,
    make_dataset,
    repro_script,
)
from .reference import Reference, approx_rows

__all__ = [
    "QueryCase",
    "RandomWorkload",
    "make_dataset",
    "repro_script",
    "Reference",
    "approx_rows",
]
