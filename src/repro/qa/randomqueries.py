"""Seeded random query workloads for differential testing.

:class:`RandomWorkload` deterministically generates query cases over a
fixed two-table schema — each case pairs SQL text with a brute-force
reference evaluation over the same data (see :class:`.reference.Reference`).
Case *i* of seed *s* is always the same query, so a failing case is fully
identified by ``(seed, index)`` and :func:`repro_script` can emit a
self-contained script that rebuilds it.

Predicates are generated as (SQL text, Python evaluator) pairs and
composed with SQL three-valued logic: an atom over a NULL operand
evaluates to ``None``, AND/OR/NOT follow Kleene semantics, and a row
qualifies only when the predicate is ``True`` — matching the engine's
NULL handling bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .reference import Reference, approx_rows

Row = Dict[str, Any]
Pred = Callable[[Row], Optional[bool]]

#: the fixed differential schema: r is the wide, NULL-bearing fact side,
#: s the narrow dimension side sharing the join key ``k``
R_COLUMNS = ("id", "k", "f", "s")
S_COLUMNS = ("id", "k", "g")
TEXT_PALETTE = ("red", "green", "blue", "amber")


def make_dataset(
    seed: int, r_rows: int = 200, s_rows: int = 120
) -> Dict[str, List[Row]]:
    """The seed-determined table contents, as dict rows (reference form)."""
    rng = random.Random(f"data:{seed}")
    r = [
        {
            "id": i,
            "k": rng.randrange(20) if rng.random() > 0.1 else None,
            "f": round(rng.random() * 100, 3),
            "s": rng.choice(TEXT_PALETTE),
        }
        for i in range(r_rows)
    ]
    s = [
        {"id": i, "k": rng.randrange(20), "g": rng.randrange(8)}
        for i in range(s_rows)
    ]
    return {"r": r, "s": s}


def load_dataset(db, tables: Dict[str, List[Row]]) -> None:
    """Create the differential schema in *db* and load *tables* into it."""
    db.execute("CREATE TABLE r (id INT PRIMARY KEY, k INT, f FLOAT, s TEXT)")
    db.execute("CREATE TABLE s (id INT, k INT, g INT)")
    db.execute("CREATE INDEX ix_s_k ON s (k)")
    db.insert_rows("r", [tuple(x[c] for c in R_COLUMNS) for x in tables["r"]])
    db.insert_rows("s", [tuple(x[c] for c in S_COLUMNS) for x in tables["s"]])
    db.execute("ANALYZE")


# -- three-valued logic -------------------------------------------------------


def _and(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def _or(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def _not(a: Optional[bool]) -> Optional[bool]:
    return None if a is None else not a


_CMP = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _cmp_atom(column: str, op: str, literal: Any) -> Pred:
    fn = _CMP[op]

    def atom(row: Row) -> Optional[bool]:
        value = row[column]
        if value is None:
            return None
        return fn(value, literal)

    return atom


@dataclass
class QueryCase:
    """One generated query: SQL plus its reference answer."""

    index: int
    sql: str
    #: True when the result carries ORDER BY and must compare as a list
    ordered: bool
    _expected: Callable[[Reference], List[Tuple[Any, ...]]]

    def expected(self, reference: Reference) -> List[Tuple[Any, ...]]:
        return self._expected(reference)

    def matches(
        self, got: List[Tuple[Any, ...]], reference: Reference
    ) -> bool:
        want = self.expected(reference)
        if self.ordered:
            return approx_rows(got) == approx_rows(want) and [
                r[0] for r in got
            ] == [r[0] for r in want]
        return approx_rows(got) == approx_rows(want)


class RandomWorkload:
    """Deterministic random query workload: ``case(i)`` is a pure function
    of ``(seed, i)``."""

    def __init__(self, seed: int, r_rows: int = 200, s_rows: int = 120):
        self.seed = seed
        self.r_rows = r_rows
        self.s_rows = s_rows

    def dataset(self) -> Dict[str, List[Row]]:
        return make_dataset(self.seed, self.r_rows, self.s_rows)

    def reference(self) -> Reference:
        return Reference(self.dataset())

    def cases(self, n: int) -> List[QueryCase]:
        return [self.case(i) for i in range(n)]

    def case(self, index: int) -> QueryCase:
        rng = random.Random(f"query:{self.seed}:{index}")
        kind = rng.randrange(6)
        if kind == 0:
            return self._single_select(index, rng)
        if kind == 1:
            return self._single_aggregate(index, rng)
        if kind == 2:
            return self._join_select(index, rng)
        if kind == 3:
            return self._join_aggregate(index, rng)
        if kind == 4:
            return self._ordered_select(index, rng)
        return self._distinct_select(index, rng)

    # -- predicate grammar ----------------------------------------------------

    def _atom(self, rng: random.Random, binding: str, table: str):
        """One random (sql, evaluator) predicate atom over *binding*."""
        if table == "r":
            choice = rng.randrange(6)
            if choice == 0:
                op = rng.choice(list(_CMP))
                lit = round(rng.uniform(0, 100), 3)
                return f"{binding}.f {op} {lit}", _cmp_atom(
                    f"{binding}.f", op, lit
                )
            if choice == 1:
                op = rng.choice(["=", "<", ">", "!="])
                lit = rng.randrange(20)
                return f"{binding}.k {op} {lit}", _cmp_atom(
                    f"{binding}.k", op, lit
                )
            if choice == 2:
                col = f"{binding}.k"
                if rng.random() < 0.5:
                    return f"{col} IS NULL", (
                        lambda row, c=col: row[c] is None
                    )
                return f"{col} IS NOT NULL", (
                    lambda row, c=col: row[c] is not None
                )
            if choice == 3:
                values = rng.sample(TEXT_PALETTE, rng.randrange(1, 3))
                quoted = ", ".join(f"'{v}'" for v in values)
                col = f"{binding}.s"
                return f"{col} IN ({quoted})", (
                    lambda row, c=col, vs=tuple(values): (
                        None if row[c] is None else row[c] in vs
                    )
                )
            if choice == 4:
                lo = rng.randrange(self.r_rows)
                hi = min(self.r_rows, lo + rng.randrange(5, 80))
                col = f"{binding}.id"
                return f"{col} BETWEEN {lo} AND {hi}", (
                    lambda row, c=col, a=lo, b=hi: (
                        None if row[c] is None else a <= row[c] <= b
                    )
                )
            prefix = rng.choice(TEXT_PALETTE)[:2]
            col = f"{binding}.s"
            return f"{col} LIKE '{prefix}%'", (
                lambda row, c=col, p=prefix: (
                    None if row[c] is None else row[c].startswith(p)
                )
            )
        choice = rng.randrange(3)
        if choice == 0:
            op = rng.choice(list(_CMP))
            lit = rng.randrange(self.s_rows)
            return f"{binding}.id {op} {lit}", _cmp_atom(
                f"{binding}.id", op, lit
            )
        if choice == 1:
            op = rng.choice(["=", "<", ">"])
            lit = rng.randrange(8)
            return f"{binding}.g {op} {lit}", _cmp_atom(
                f"{binding}.g", op, lit
            )
        op = rng.choice(["=", "<", ">", ">="])
        lit = rng.randrange(20)
        return f"{binding}.k {op} {lit}", _cmp_atom(f"{binding}.k", op, lit)

    def _predicate(self, rng: random.Random, bindings):
        """1–3 atoms joined with AND/OR, possibly one NOT."""
        count = rng.randrange(1, 4)
        sql_parts: List[str] = []
        fns: List[Pred] = []
        ops: List[str] = []
        for i in range(count):
            binding, table = rng.choice(bindings)
            sql, fn = self._atom(rng, binding, table)
            if rng.random() < 0.15:
                sql, fn = f"NOT ({sql})", (
                    lambda row, f=fn: _not(f(row))
                )
            sql_parts.append(sql)
            fns.append(fn)
            if i + 1 < count:
                ops.append(rng.choice(["AND", "OR"]))

        def evaluate(row: Row) -> Optional[bool]:
            acc = fns[0](row)
            for op, fn in zip(ops, fns[1:]):
                nxt = fn(row)
                acc = _and(acc, nxt) if op == "AND" else _or(acc, nxt)
            return acc

        sql = sql_parts[0]
        for op, part in zip(ops, sql_parts[1:]):
            sql = f"({sql} {op} {part})"
        return sql, evaluate

    # -- aggregates -----------------------------------------------------------

    def _aggs(self, rng: random.Random, bindings):
        """Random aggregate list: (sql_exprs, names, reducer over rows)."""
        # non-null numeric columns only: engine and reference then agree on
        # NULL handling without extra SQL-semantics modeling here
        numeric = []
        for binding, table in bindings:
            numeric.append(f"{binding}.id")
            if table == "r":
                numeric.append(f"{binding}.f")
            else:
                numeric.append(f"{binding}.g")
        picks = []
        picks.append(("COUNT(*)", lambda rows: len(rows)))
        for i in range(rng.randrange(1, 3)):
            col = rng.choice(numeric)
            func = rng.choice(["SUM", "MIN", "MAX", "AVG", "COUNT"])
            if func == "SUM":
                picks.append(
                    (f"SUM({col})", lambda rows, c=col: sum(x[c] for x in rows))
                )
            elif func == "MIN":
                picks.append(
                    (f"MIN({col})", lambda rows, c=col: min(x[c] for x in rows))
                )
            elif func == "MAX":
                picks.append(
                    (f"MAX({col})", lambda rows, c=col: max(x[c] for x in rows))
                )
            elif func == "AVG":
                picks.append(
                    (
                        f"AVG({col})",
                        lambda rows, c=col: sum(x[c] for x in rows)
                        / len(rows),
                    )
                )
            else:
                picks.append(
                    (
                        f"COUNT({col})",
                        lambda rows, c=col: sum(
                            1 for x in rows if x[c] is not None
                        ),
                    )
                )
        exprs = [f"{sql} AS a{i}" for i, (sql, _) in enumerate(picks)]
        return exprs, [fn for _, fn in picks]

    # -- query shapes ---------------------------------------------------------

    def _single_select(self, index: int, rng: random.Random) -> QueryCase:
        table = rng.choice(["r", "s"])
        cols = (
            rng.sample(["id", "k", "f", "s"], rng.randrange(1, 4))
            if table == "r"
            else rng.sample(["id", "k", "g"], rng.randrange(1, 3))
        )
        pred_sql, pred = self._predicate(rng, [(table, table)])
        select = ", ".join(f"{table}.{c}" for c in cols)
        sql = f"SELECT {select} FROM {table} WHERE {pred_sql}"

        def expected(ref: Reference):
            return [
                tuple(row[f"{table}.{c}"] for c in cols)
                for row in ref.join([(table, table)])
                if pred(row) is True
            ]

        return QueryCase(index, sql, False, expected)

    def _ordered_select(self, index: int, rng: random.Random) -> QueryCase:
        table = rng.choice(["r", "s"])
        extra = "f" if table == "r" else "g"
        pred_sql, pred = self._predicate(rng, [(table, table)])
        direction = rng.choice(["ASC", "DESC"])
        limit = rng.choice([None, rng.randrange(1, 40)])
        sql = (
            f"SELECT {table}.id, {table}.{extra} FROM {table} "
            f"WHERE {pred_sql} ORDER BY {table}.id {direction}"
        )
        if limit is not None:
            sql += f" LIMIT {limit}"

        def expected(ref: Reference):
            rows = [
                (row[f"{table}.id"], row[f"{table}.{extra}"])
                for row in ref.join([(table, table)])
                if pred(row) is True
            ]
            rows.sort(key=lambda r: r[0], reverse=direction == "DESC")
            return rows if limit is None else rows[:limit]

        return QueryCase(index, sql, True, expected)

    def _distinct_select(self, index: int, rng: random.Random) -> QueryCase:
        table = rng.choice(["r", "s"])
        col = "s" if table == "r" else "g"
        pred_sql, pred = self._predicate(rng, [(table, table)])
        sql = f"SELECT DISTINCT {table}.{col} FROM {table} WHERE {pred_sql}"

        def expected(ref: Reference):
            return list(
                {
                    (row[f"{table}.{col}"],)
                    for row in ref.join([(table, table)])
                    if pred(row) is True
                }
            )

        return QueryCase(index, sql, False, expected)

    def _single_aggregate(self, index: int, rng: random.Random) -> QueryCase:
        table = rng.choice(["r", "s"])
        group = f"{table}.s" if table == "r" else f"{table}.g"
        pred_sql, pred = self._predicate(rng, [(table, table)])
        exprs, reducers = self._aggs(rng, [(table, table)])
        having = rng.choice([None, rng.randrange(1, 30)])
        sql = (
            f"SELECT {group}, {', '.join(exprs)} FROM {table} "
            f"WHERE {pred_sql} GROUP BY {group}"
        )
        if having is not None:
            sql += f" HAVING COUNT(*) > {having}"

        def expected(ref: Reference):
            groups: Dict[Any, List[Row]] = {}
            for row in ref.join([(table, table)]):
                if pred(row) is True:
                    groups.setdefault(row[group], []).append(row)
            out = []
            for key, rows in groups.items():
                if having is not None and len(rows) <= having:
                    continue
                out.append(
                    (key,) + tuple(reduce(rows) for reduce in reducers)
                )
            return out

        return QueryCase(index, sql, False, expected)

    def _join_bindings(self, rng: random.Random):
        if rng.random() < 0.25:  # self-join on the dimension side
            return [("a", "s"), ("b", "s")], "a.k = b.k"
        return [("r", "r"), ("s", "s")], "r.k = s.k"

    def _join_select(self, index: int, rng: random.Random) -> QueryCase:
        bindings, join_sql = self._join_bindings(rng)
        (lb, lt), (rb, rt) = bindings
        join_pred = _join_key_pred(lb, rb)
        pred_sql, pred = self._predicate(rng, bindings)
        cols = [f"{lb}.id", f"{rb}.id"]
        if lt == "r":
            cols.append(f"{lb}.s")
        sql = (
            f"SELECT {', '.join(cols)} FROM "
            f"{_from_clause(bindings)} WHERE {join_sql} AND {pred_sql}"
        )

        def expected(ref: Reference):
            return [
                tuple(row[c] for c in cols)
                for row in ref.join(bindings)
                if join_pred(row) is True and pred(row) is True
            ]

        return QueryCase(index, sql, False, expected)

    def _join_aggregate(self, index: int, rng: random.Random) -> QueryCase:
        bindings, join_sql = self._join_bindings(rng)
        (lb, lt), (rb, rt) = bindings
        join_pred = _join_key_pred(lb, rb)
        group = f"{lb}.s" if lt == "r" else f"{rb}.g"
        pred_sql, pred = self._predicate(rng, bindings)
        exprs, reducers = self._aggs(rng, bindings)
        sql = (
            f"SELECT {group}, {', '.join(exprs)} FROM "
            f"{_from_clause(bindings)} WHERE {join_sql} AND {pred_sql} "
            f"GROUP BY {group}"
        )

        def expected(ref: Reference):
            groups: Dict[Any, List[Row]] = {}
            for row in ref.join(bindings):
                if join_pred(row) is True and pred(row) is True:
                    groups.setdefault(row[group], []).append(row)
            return [
                (key,) + tuple(reduce(rows) for reduce in reducers)
                for key, rows in groups.items()
            ]

        return QueryCase(index, sql, False, expected)


def _from_clause(bindings) -> str:
    parts = []
    for binding, table in bindings:
        parts.append(table if binding == table else f"{table} {binding}")
    return ", ".join(parts)


def _join_key_pred(left_binding: str, right_binding: str) -> Pred:
    lk, rk = f"{left_binding}.k", f"{right_binding}.k"

    def pred(row: Row) -> Optional[bool]:
        a, b = row[lk], row[rk]
        if a is None or b is None:
            return None
        return a == b

    return pred


def repro_script(
    seed: int,
    index: int,
    strategy: str = "dp",
    batch_size: int = 1024,
    parallel_degree: int = 1,
    r_rows: int = 200,
    s_rows: int = 120,
) -> str:
    """A self-contained script reproducing one differential case.

    Run with ``PYTHONPATH=src python <script>`` from the repo root; it
    rebuilds the exact dataset and query from ``(seed, index)`` and
    asserts the engine matches the reference."""
    return f'''#!/usr/bin/env python
"""Differential repro: seed={seed} case={index} strategy={strategy!r}
batch_size={batch_size} parallel_degree={parallel_degree}.

Run from the repo root:  PYTHONPATH=src python thisfile.py
"""
from repro import Database
from repro.optimizer import PlannerOptions
from repro.qa import RandomWorkload, approx_rows
from repro.qa.randomqueries import load_dataset

workload = RandomWorkload({seed}, r_rows={r_rows}, s_rows={s_rows})
case = workload.case({index})
print("SQL:", case.sql)

db = Database(buffer_pages=64, work_mem_pages=4, batch_size={batch_size})
load_dataset(db, workload.dataset())
db.options = PlannerOptions(
    strategy={strategy!r},
    parallel_degree={parallel_degree},
    force_parallel={parallel_degree} > 1,
)
print(db.explain(case.sql))
got = db.query(case.sql).rows
want = case.expected(workload.reference())
if case.matches(got, workload.reference()):
    print("OK:", len(got), "rows match the reference")
else:
    print("MISMATCH: engine", len(got), "rows, reference", len(want))
    print("engine   :", approx_rows(got)[:10])
    print("reference:", approx_rows(want)[:10])
    raise SystemExit(1)
'''
