"""Deterministic fault injection: crash the engine at exact points.

Recovery code is only as trustworthy as the crashes it has survived, so
this module makes crashing *reproducible*.  The WAL writer, the buffer
pool and the checkpointer call :func:`hit` at every durability-relevant
moment (a *failpoint site*); a site is a named counter.  Normally a hit
costs one dict lookup and returns.  When the environment arms a site —

    REPRO_FAILPOINTS="wal.append=3:partial"

— the third ``wal.append`` hit kills the process with ``os._exit`` (no
atexit handlers, no flushes: the closest a unit test gets to pulling the
plug).  Three kill modes model three torn states:

* ``before``  — die before the guarded effect (nothing written);
* ``after``   — die after the effect (written, not acknowledged);
* ``partial`` — the site writes a *prefix* of its payload, then dies
  (a torn write: exactly what a power cut mid-``write(2)`` leaves).

``REPRO_FAILPOINTS_COUNT=<path>`` arms nothing but records every site's
final hit count as JSON at interpreter exit — the sweep driver uses one
counting run to learn how many kill points a workload has, then replays
it once per point.  See :mod:`tests.test_crash_recovery` and
docs/RECOVERY.md for the sweep protocol.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from typing import Dict, Optional, Tuple

#: process exit code used for injected crashes (distinguishes an injected
#: kill from an ordinary failure in sweep drivers)
CRASH_EXIT_CODE = 113

#: kill modes a site may be armed with
MODES = ("before", "after", "partial")


class FaultError(Exception):
    """Raised for malformed REPRO_FAILPOINTS specs."""


class Failpoints:
    """A registry of named crash sites with per-site hit counters."""

    def __init__(self, spec: str = "", count_path: Optional[str] = None):
        self._lock = threading.Lock()
        self.counts: Dict[str, int] = {}
        #: site -> (hit number to kill at, mode)
        self.armed: Dict[str, Tuple[int, str]] = parse_spec(spec)
        self.count_path = count_path
        if count_path:
            atexit.register(self._dump_counts)

    @classmethod
    def from_env(cls) -> "Failpoints":
        return cls(
            os.environ.get("REPRO_FAILPOINTS", ""),
            os.environ.get("REPRO_FAILPOINTS_COUNT") or None,
        )

    # -- the hot path ---------------------------------------------------------

    def hit(self, site: str) -> Optional[str]:
        """Count one hit of *site*.

        Returns ``None`` (keep going), or ``"partial"`` when the site
        itself must perform its torn half-write and then call
        :func:`crash`.  ``before``/``after`` mode kills are handled here:
        ``before`` exits immediately; ``after`` arms a flag returned as
        ``"after"`` so the caller completes the effect and then crashes
        via :func:`crash`.
        """
        with self._lock:
            n = self.counts.get(site, 0) + 1
            self.counts[site] = n
        armed = self.armed.get(site)
        if armed is None or n != armed[0]:
            return None
        mode = armed[1]
        if mode == "before":
            crash()
        return mode  # "partial" or "after": caller finishes, then crashes

    def _dump_counts(self) -> None:
        try:
            with open(self.count_path, "w") as f:
                json.dump(self.counts, f)
        except OSError:  # pragma: no cover - count file on a dead disk
            pass


def parse_spec(spec: str) -> Dict[str, Tuple[int, str]]:
    """Parse ``"site=N[:mode],site2=M"`` into ``{site: (N, mode)}``."""
    armed: Dict[str, Tuple[int, str]] = {}
    for part in filter(None, (p.strip() for p in spec.split(","))):
        if "=" not in part:
            raise FaultError(f"bad failpoint spec {part!r} (want site=N[:mode])")
        site, _, rest = part.partition("=")
        nth, _, mode = rest.partition(":")
        mode = mode or "before"
        if mode not in MODES:
            raise FaultError(f"unknown failpoint mode {mode!r} (want {MODES})")
        try:
            n = int(nth)
        except ValueError:
            raise FaultError(f"bad failpoint count {nth!r} in {part!r}") from None
        if n < 1:
            raise FaultError(f"failpoint count must be >= 1, got {n}")
        armed[site.strip()] = (n, mode)
    return armed


def crash() -> None:
    """Die *now*: no atexit, no buffered-file flushing, no cleanup."""
    os._exit(CRASH_EXIT_CODE)


#: the process-wide registry every instrumented site consults
FAILPOINTS = Failpoints.from_env()


# -- the crash workload + oracle ----------------------------------------------
#
# A deterministic transactional workload whose effect is a pure function
# of (seed, number of committed transactions).  The runner executes it
# against a durable database, fsync-appending each transaction id to an
# *acks* file the moment its COMMIT returns.  After a crash, the oracle
# recovers the database and checks it equals the reference state for
# some admissible commit count m: every acknowledged transaction must
# have survived, and at most the single in-flight transaction beyond the
# last ack may additionally have committed (durable COMMIT, killed
# before the ack reached the file).  Anything else — a lost ack'd
# transaction, a surviving uncommitted one, torn rows — is a recovery
# bug and fails the oracle.

WORKLOAD_TABLE = "kv"
#: a CHECKPOINT is issued after every k-th transaction, so sweeps also
#: kill mid-checkpoint and mid-WAL-truncation
CHECKPOINT_EVERY = 7


def txn_ops(seed: int, t: int):
    """The (deterministic) operations of transaction *t*: a list of
    ``("insert", k, v)`` / ``("update", k, v)`` / ``("delete", k)``.
    Derived from the seed alone — never from database state — so a
    reference replay reproduces them regardless of where a run died."""
    import random

    r = random.Random(f"{seed}:{t}")
    ops = []
    for j in range(r.randint(1, 3)):
        kind = r.choice(("insert", "insert", "update", "delete"))
        if kind == "insert":
            ops.append(("insert", t * 100 + j, r.randrange(10_000)))
        else:
            u = r.randint(1, max(1, t - 1))
            k = u * 100 + r.randrange(3)
            if kind == "update":
                ops.append(("update", k, r.randrange(10_000)))
            else:
                ops.append(("delete", k))
    return ops


def reference_rows(seed: int, committed: int):
    """The exact (k, v) rows after *committed* transactions, sorted."""
    state = {}
    for t in range(1, committed + 1):
        for op in txn_ops(seed, t):
            if op[0] == "insert":
                state[op[1]] = op[2]
            elif op[0] == "update":
                if op[1] in state:
                    state[op[1]] = op[2]
            else:
                state.pop(op[1], None)
    return sorted(state.items())


def run_workload(
    data_dir: str, seed: int, txns: int, acks_path: str
) -> None:
    """Run the workload to completion (or until an armed failpoint kills
    the process).  Assumes a fresh ``data_dir``."""
    from ..engine.database import Database

    db = Database(data_dir=data_dir)
    if not db.catalog.has_table(WORKLOAD_TABLE):
        db.execute(f"CREATE TABLE {WORKLOAD_TABLE} (k INT, v INT)")
    #: a second connection that holds an *uncommitted* write open across
    #: every CHECKPOINT: fuzzy checkpoints must skip its dirty page
    #: (no-steal), record it in the ATT, and set redo_lsn below it —
    #: so sweep kills mid-checkpoint exercise genuinely fuzzy recovery.
    #: Keys are negative, and the write always rolls back, so the
    #: reference oracle is unaffected.
    side = db.create_session()
    with open(acks_path, "a") as acks:
        for t in range(1, txns + 1):
            db.execute("BEGIN")
            for op in txn_ops(seed, t):
                if op[0] == "insert":
                    db.execute(
                        f"INSERT INTO {WORKLOAD_TABLE} "
                        f"VALUES ({op[1]}, {op[2]})"
                    )
                elif op[0] == "update":
                    db.execute(
                        f"UPDATE {WORKLOAD_TABLE} SET v = {op[2]} "
                        f"WHERE k = {op[1]}"
                    )
                else:
                    db.execute(
                        f"DELETE FROM {WORKLOAD_TABLE} WHERE k = {op[1]}"
                    )
            db.execute("COMMIT")
            acks.write(f"{t}\n")
            acks.flush()
            os.fsync(acks.fileno())
            if t % CHECKPOINT_EVERY == 0:
                db.execute("BEGIN", session=side)
                db.execute(
                    f"INSERT INTO {WORKLOAD_TABLE} VALUES ({-t}, 0)",
                    session=side,
                )
                db.execute("CHECKPOINT")
                db.execute("ROLLBACK", session=side)
    db.close()


def read_acks(acks_path: str):
    """Acknowledged transaction ids (a torn final line is ignored — the
    crash may have interrupted the ack write itself)."""
    if not os.path.exists(acks_path):
        return []
    with open(acks_path, "rb") as f:
        data = f.read()
    lines = data.split(b"\n")
    if lines and lines[-1] != b"":
        lines = lines[:-1]  # torn tail: no trailing newline, not ack'd
    return [int(line) for line in lines if line.strip().isdigit()]


def verify_recovery(
    data_dir: str, seed: int, txns: int, acks_path: str
) -> dict:
    """Recover the database and check it against the committed-prefix
    oracle.  Returns a summary dict; raises :class:`FaultError` when the
    recovered state matches no admissible commit count."""
    from ..engine.database import Database

    acked = read_acks(acks_path)
    a = max(acked) if acked else 0
    if acked != list(range(1, a + 1)):
        raise FaultError(f"ack file is not a prefix: {acked!r}")
    db = Database(data_dir=data_dir)
    try:
        report = db.last_recovery
        if db.catalog.has_table(WORKLOAD_TABLE):
            got = sorted(
                db.query(f"SELECT k, v FROM {WORKLOAD_TABLE}").rows
            )
        else:
            got = None
        # admissible commit counts: every ack survived; at most the one
        # in-flight transaction past the last ack may also have committed
        for m in (a, a + 1):
            if m > txns:
                continue
            if got is None:
                if m == 0:
                    return {"committed": 0, "acked": a, "rows": 0,
                            "recovery": report.summary()}
                continue
            if got == reference_rows(seed, m):
                return {"committed": m, "acked": a, "rows": len(got),
                        "recovery": report.summary()}
        raise FaultError(
            f"recovered state matches no admissible commit count "
            f"(acked={a}, rows={'<no table>' if got is None else len(got)}); "
            f"recovery: {report.summary()}"
        )
    finally:
        db.close()


# -- sweep driver --------------------------------------------------------------

#: every instrumented site, with the kill modes that make sense there
SWEEP_SITES = {
    "wal.append": ("before", "after", "partial"),
    "wal.fsync": ("before", "after"),
    "checkpoint.begin": ("before", "after"),
    "checkpoint.flush": ("before", "after"),
    "checkpoint.page": ("before", "after", "partial"),
    "checkpoint.end": ("before", "after"),
    "page.writeback": ("before", "after"),
}


def _workload_argv(data_dir: str, seed: int, txns: int, acks: str):
    import sys

    return [
        sys.executable,
        "-m",
        "repro.qa.faults",
        "--data-dir",
        data_dir,
        "--seed",
        str(seed),
        "--txns",
        str(txns),
        "--acks",
        acks,
    ]


def _subprocess_env(extra: Dict[str, str]) -> Dict[str, str]:
    import repro

    src = os.path.dirname(os.path.dirname(os.path.dirname(repro.__file__)))
    env = dict(os.environ)
    env.pop("REPRO_FAILPOINTS", None)
    env.pop("REPRO_FAILPOINTS_COUNT", None)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    env.update(extra)
    return env


def count_workload_hits(
    base_dir: str, seed: int, txns: int
) -> Dict[str, int]:
    """One un-armed counting run: how often does each site fire?"""
    import subprocess

    data_dir = os.path.join(base_dir, "count")
    os.makedirs(data_dir, exist_ok=True)
    acks = os.path.join(data_dir, "acks.txt")
    counts_path = os.path.join(data_dir, "counts.json")
    proc = subprocess.run(
        _workload_argv(data_dir, seed, txns, acks),
        env=_subprocess_env({"REPRO_FAILPOINTS_COUNT": counts_path}),
        capture_output=True,
        text=True,
        timeout=600,
    )
    if proc.returncode != 0:
        raise FaultError(
            f"counting run failed (rc={proc.returncode}): {proc.stderr[-2000:]}"
        )
    with open(counts_path) as f:
        return json.load(f)


def sweep_points(counts: Dict[str, int], max_points: Optional[int] = None):
    """The (site, hit_number, mode) kill points a sweep should cover —
    every hit of every site by default, evenly subsampled per (site,
    mode) when *max_points* bounds the budget."""
    points = []
    for site, modes in SWEEP_SITES.items():
        total = counts.get(site, 0)
        if total == 0:
            continue
        for mode in modes:
            hits = list(range(1, total + 1))
            if max_points is not None and len(hits) > max_points:
                step = len(hits) / max_points
                hits = sorted({hits[int(i * step)] for i in range(max_points)})
            for n in hits:
                points.append((site, n, mode))
    return points


def run_crash_point(
    base_dir: str, seed: int, txns: int, site: str, n: int, mode: str
) -> dict:
    """Kill one fresh workload run at (site, hit *n*, mode), then recover
    and verify.  Returns the oracle summary (with ``"skipped": True``
    when the armed point was never reached and the run completed)."""
    import shutil
    import subprocess

    data_dir = os.path.join(base_dir, f"{site.replace('.', '_')}-{n}-{mode}")
    shutil.rmtree(data_dir, ignore_errors=True)
    os.makedirs(data_dir)
    acks = os.path.join(data_dir, "acks.txt")
    proc = subprocess.run(
        _workload_argv(data_dir, seed, txns, acks),
        env=_subprocess_env({"REPRO_FAILPOINTS": f"{site}={n}:{mode}"}),
        capture_output=True,
        text=True,
        timeout=600,
    )
    if proc.returncode == 0:
        summary = verify_recovery(data_dir, seed, txns, acks)
        summary["skipped"] = True  # armed point never fired this run
    elif proc.returncode == CRASH_EXIT_CODE:
        summary = verify_recovery(data_dir, seed, txns, acks)
        summary["skipped"] = False
    else:
        raise FaultError(
            f"workload died unexpectedly at {site}={n}:{mode} "
            f"(rc={proc.returncode}): {proc.stderr[-2000:]}"
        )
    summary.update(site=site, n=n, mode=mode)
    shutil.rmtree(data_dir, ignore_errors=True)
    return summary


def run_crash_sweep(
    base_dir: str,
    seed: int,
    txns: int,
    max_points: Optional[int] = None,
) -> list:
    """The full protocol: one counting run, then kill-and-verify once per
    sweep point.  Raises :class:`FaultError` on the first oracle failure;
    returns every point's summary otherwise."""
    counts = count_workload_hits(base_dir, seed, txns)
    results = []
    for site, n, mode in sweep_points(counts, max_points):
        results.append(run_crash_point(base_dir, seed, txns, site, n, mode))
    return results


def _main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.qa.faults",
        description="run the deterministic crash workload (sweep target)",
    )
    parser.add_argument("--data-dir", required=True)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--txns", type=int, default=20)
    parser.add_argument("--acks", default=None)
    args = parser.parse_args(argv)
    os.makedirs(args.data_dir, exist_ok=True)
    acks = args.acks or os.path.join(args.data_dir, "acks.txt")
    run_workload(args.data_dir, args.seed, args.txns, acks)
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    raise SystemExit(_main())
