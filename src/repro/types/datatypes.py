"""Column data types and the coercion/comparison rules shared by the engine.

The engine supports a deliberately small, era-faithful set of scalar types.
Every layer above storage (expressions, statistics, the optimizer's
selectivity arithmetic) relies on the ordering and coercion rules defined
here, so they live in one place.

NULL is represented by Python ``None`` everywhere.  Comparison semantics are
SQL-ish three-valued logic: any comparison involving NULL yields ``None``
(unknown), which predicates treat as "does not qualify".
"""

from __future__ import annotations

import enum
from datetime import date, timedelta
from typing import Any, Optional


class DataType(enum.Enum):
    """Scalar column types supported by the engine."""

    INT = "INT"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOL = "BOOL"
    DATE = "DATE"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType.{self.name}"

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.FLOAT)

    @property
    def python_type(self) -> type:
        return _PYTHON_TYPES[self]

    @property
    def fixed_width(self) -> Optional[int]:
        """Byte width used by the storage layer, or None for variable width."""
        return _FIXED_WIDTHS[self]


_PYTHON_TYPES = {
    DataType.INT: int,
    DataType.FLOAT: float,
    DataType.TEXT: str,
    DataType.BOOL: bool,
    DataType.DATE: date,
}

_FIXED_WIDTHS = {
    DataType.INT: 8,
    DataType.FLOAT: 8,
    DataType.TEXT: None,
    DataType.BOOL: 1,
    DataType.DATE: 4,
}

#: Average byte width assumed for TEXT columns when estimating record sizes.
DEFAULT_TEXT_WIDTH = 16


class TypeError_(Exception):
    """Raised when a value does not conform to its declared type."""


def type_name(dtype: DataType) -> str:
    return dtype.value


def parse_type(name: str) -> DataType:
    """Parse a SQL type name (``INT``, ``INTEGER``, ``VARCHAR`` ...)."""
    upper = name.strip().upper()
    aliases = {
        "INT": DataType.INT,
        "INTEGER": DataType.INT,
        "BIGINT": DataType.INT,
        "SMALLINT": DataType.INT,
        "FLOAT": DataType.FLOAT,
        "REAL": DataType.FLOAT,
        "DOUBLE": DataType.FLOAT,
        "DECIMAL": DataType.FLOAT,
        "NUMERIC": DataType.FLOAT,
        "TEXT": DataType.TEXT,
        "VARCHAR": DataType.TEXT,
        "CHAR": DataType.TEXT,
        "STRING": DataType.TEXT,
        "BOOL": DataType.BOOL,
        "BOOLEAN": DataType.BOOL,
        "DATE": DataType.DATE,
    }
    if upper in aliases:
        return aliases[upper]
    raise TypeError_(f"unknown type name: {name!r}")


def check_value(value: Any, dtype: DataType) -> Any:
    """Validate (and mildly coerce) *value* for storage in a *dtype* column.

    Returns the canonical stored representation.  ``None`` always passes
    (NULL is allowed in every column unless a higher layer forbids it).
    """
    if value is None:
        return None
    if dtype is DataType.INT:
        if isinstance(value, bool):
            raise TypeError_(f"BOOL value {value!r} in INT column")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeError_(f"value {value!r} is not an INT")
    if dtype is DataType.FLOAT:
        if isinstance(value, bool):
            raise TypeError_(f"BOOL value {value!r} in FLOAT column")
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeError_(f"value {value!r} is not a FLOAT")
    if dtype is DataType.TEXT:
        if isinstance(value, str):
            return value
        raise TypeError_(f"value {value!r} is not TEXT")
    if dtype is DataType.BOOL:
        if isinstance(value, bool):
            return value
        raise TypeError_(f"value {value!r} is not a BOOL")
    if dtype is DataType.DATE:
        if isinstance(value, date):
            return value
        if isinstance(value, str):
            return date.fromisoformat(value)
        raise TypeError_(f"value {value!r} is not a DATE")
    raise TypeError_(f"unhandled type {dtype}")  # pragma: no cover


def infer_type(value: Any) -> DataType:
    """Infer the DataType of a Python literal (bool before int!)."""
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.TEXT
    if isinstance(value, date):
        return DataType.DATE
    raise TypeError_(f"cannot infer SQL type for {value!r}")


def common_type(a: DataType, b: DataType) -> DataType:
    """The type two operands are coerced to for comparison/arithmetic."""
    if a is b:
        return a
    if {a, b} == {DataType.INT, DataType.FLOAT}:
        return DataType.FLOAT
    raise TypeError_(f"incompatible types: {a.value} and {b.value}")


def compare(a: Any, b: Any) -> Optional[int]:
    """Three-valued SQL comparison.

    Returns -1/0/+1, or ``None`` if either operand is NULL.
    """
    if a is None or b is None:
        return None
    if isinstance(a, bool) != isinstance(b, bool):
        raise TypeError_(f"cannot compare {a!r} with {b!r}")
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def value_to_float(value: Any, dtype: DataType) -> float:
    """Map a value onto the real line for histogram / selectivity math.

    TEXT is mapped via a prefix-based ordinal so that range selectivities on
    strings are still meaningful; DATE maps to its ordinal day number.
    """
    if value is None:
        raise TypeError_("cannot map NULL onto the real line")
    if dtype is DataType.INT or dtype is DataType.FLOAT:
        return float(value)
    if dtype is DataType.BOOL:
        return 1.0 if value else 0.0
    if dtype is DataType.DATE:
        return float(value.toordinal())
    if dtype is DataType.TEXT:
        return _text_ordinal(value)
    raise TypeError_(f"unhandled type {dtype}")  # pragma: no cover


def _text_ordinal(s: str, prefix: int = 8) -> float:
    """Map a string to a float preserving lexicographic order (approximately).

    Uses the first *prefix* bytes as base-256 digits.  Two strings that share
    a long common prefix map close together, which is exactly the behaviour a
    histogram over strings wants.
    """
    acc = 0.0
    data = s.encode("utf-8", errors="replace")[:prefix]
    for i, byte in enumerate(data):
        acc += byte / (256.0 ** (i + 1))
    return acc


def float_to_value(x: float, dtype: DataType) -> Any:
    """Best-effort inverse of :func:`value_to_float` (used by generators)."""
    if dtype is DataType.INT:
        return int(round(x))
    if dtype is DataType.FLOAT:
        return float(x)
    if dtype is DataType.BOOL:
        return x >= 0.5
    if dtype is DataType.DATE:
        return date.fromordinal(max(1, int(round(x))))
    raise TypeError_(f"cannot invert real-line mapping for {dtype}")


def successor(value: Any, dtype: DataType) -> Any:
    """The smallest representable value strictly greater than *value*.

    Used to convert ``>`` bounds into ``>=`` bounds for index range scans on
    discrete types.  For continuous types returns the value itself.
    """
    if dtype is DataType.INT:
        return value + 1
    if dtype is DataType.DATE:
        return value + timedelta(days=1)
    if dtype is DataType.TEXT:
        return value + "\x00"
    return value


def byte_width(dtype: DataType, avg_text: int = DEFAULT_TEXT_WIDTH) -> int:
    """Estimated stored byte width of one value of *dtype*."""
    fixed = dtype.fixed_width
    return fixed if fixed is not None else avg_text
