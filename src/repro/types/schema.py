"""Schemas: ordered, named, typed column lists.

A :class:`Schema` is immutable and hashable; operators derive new schemas
(projection, join concatenation, renaming) rather than mutating them.  Rows
are plain Python tuples positionally aligned with their schema — the hot
loops of the executor index tuples by integer position resolved once at
plan-build time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .datatypes import DataType, TypeError_, byte_width, check_value


class SchemaError(Exception):
    """Raised for unknown/ambiguous columns or malformed schemas."""


@dataclass(frozen=True)
class Column:
    """One column of a schema.

    ``table`` is the qualifier (a table name or alias); it may be ``None``
    for computed columns.  Equality includes the qualifier, so ``a.id`` and
    ``b.id`` are distinct columns even with identical names and types.
    """

    name: str
    dtype: DataType
    table: Optional[str] = None
    nullable: bool = True

    @property
    def qualified_name(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    def renamed(self, table: Optional[str]) -> "Column":
        return Column(self.name, self.dtype, table, self.nullable)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.qualified_name}:{self.dtype.value}"


class Schema:
    """An immutable ordered list of :class:`Column`.

    Lookup accepts bare names (``"id"``) and qualified names (``"t.id"``).
    Bare-name lookup raises :class:`SchemaError` if the name is ambiguous
    across qualifiers.
    """

    __slots__ = ("_columns", "_by_qualified", "_by_name", "_hash", "_dtypes")

    def __init__(self, columns: Iterable[Column]):
        cols: Tuple[Column, ...] = tuple(columns)
        by_qualified: Dict[str, int] = {}
        by_name: Dict[str, List[int]] = {}
        for i, col in enumerate(cols):
            if not isinstance(col, Column):
                raise SchemaError(f"not a Column: {col!r}")
            key = col.qualified_name
            if key in by_qualified:
                raise SchemaError(f"duplicate column {key!r} in schema")
            by_qualified[key] = i
            by_name.setdefault(col.name, []).append(i)
        self._columns = cols
        self._by_qualified = by_qualified
        self._by_name = by_name
        self._hash: Optional[int] = None
        self._dtypes: Optional[Tuple[DataType, ...]] = None

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __getitem__(self, index: int) -> Column:
        return self._columns[index]

    def dtypes(self) -> Tuple[DataType, ...]:
        """Column dtypes as a hashable tuple (cached — the row codec keys
        its precompiled decode plans on it)."""
        if self._dtypes is None:
            self._dtypes = tuple(col.dtype for col in self._columns)
        return self._dtypes

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._columns == other._columns

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._columns)
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(c) for c in self._columns)
        return f"Schema({inner})"

    # -- lookup --------------------------------------------------------------

    @property
    def columns(self) -> Tuple[Column, ...]:
        return self._columns

    def index_of(self, name: str) -> int:
        """Resolve a (possibly qualified) column name to its position."""
        if name in self._by_qualified:
            return self._by_qualified[name]
        if "." in name:
            table, bare = name.split(".", 1)
            hits = [
                i
                for i in self._by_name.get(bare, [])
                if self._columns[i].table == table
            ]
            if len(hits) == 1:
                return hits[0]
            raise SchemaError(f"unknown column {name!r}")
        hits = self._by_name.get(name, [])
        if len(hits) == 1:
            return hits[0]
        if not hits:
            raise SchemaError(f"unknown column {name!r}")
        cands = ", ".join(self._columns[i].qualified_name for i in hits)
        raise SchemaError(f"ambiguous column {name!r} (candidates: {cands})")

    def has_column(self, name: str) -> bool:
        try:
            self.index_of(name)
            return True
        except SchemaError:
            return False

    def column(self, name: str) -> Column:
        return self._columns[self.index_of(name)]

    def names(self) -> List[str]:
        return [c.name for c in self._columns]

    def qualified_names(self) -> List[str]:
        return [c.qualified_name for c in self._columns]

    # -- derivation ----------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        return Schema(self._columns[self.index_of(n)] for n in names)

    def concat(self, other: "Schema") -> "Schema":
        return Schema(self._columns + other._columns)

    def renamed(self, table: str) -> "Schema":
        return Schema(c.renamed(table) for c in self._columns)

    def positions(self, names: Sequence[str]) -> List[int]:
        return [self.index_of(n) for n in names]

    # -- rows ----------------------------------------------------------------

    def validate_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Type-check a row against this schema, returning the stored tuple."""
        if len(row) != len(self._columns):
            raise TypeError_(
                f"row has {len(row)} values, schema has {len(self._columns)}"
            )
        out = []
        for value, col in zip(row, self._columns):
            checked = check_value(value, col.dtype)
            if checked is None and not col.nullable:
                raise TypeError_(f"NULL in non-nullable column {col.qualified_name}")
            out.append(checked)
        return tuple(out)

    def row_dict(self, row: Sequence[Any]) -> Dict[str, Any]:
        """Render a tuple as a name->value dict (for display/tests)."""
        return {c.qualified_name: v for c, v in zip(self._columns, row)}

    def estimated_row_bytes(self) -> int:
        """Rough stored size of one row, used by cost arithmetic."""
        return sum(byte_width(c.dtype) for c in self._columns) + 2 * len(
            self._columns
        )


@dataclass
class SchemaBuilder:
    """Convenience builder used by DDL and tests."""

    table: Optional[str] = None
    _cols: List[Column] = field(default_factory=list)

    def add(
        self, name: str, dtype: DataType, nullable: bool = True
    ) -> "SchemaBuilder":
        self._cols.append(Column(name, dtype, self.table, nullable))
        return self

    def build(self) -> Schema:
        return Schema(self._cols)


def schema_of(table: Optional[str], *cols: Tuple[str, DataType]) -> Schema:
    """Shorthand: ``schema_of("t", ("id", INT), ("name", TEXT))``."""
    return Schema(Column(n, t, table) for n, t in cols)
