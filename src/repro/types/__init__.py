"""Type system: scalar data types, schemas and row validation."""

from .datatypes import (
    DEFAULT_TEXT_WIDTH,
    DataType,
    TypeError_,
    byte_width,
    check_value,
    common_type,
    compare,
    float_to_value,
    infer_type,
    parse_type,
    successor,
    value_to_float,
)
from .schema import Column, Schema, SchemaBuilder, SchemaError, schema_of

__all__ = [
    "DEFAULT_TEXT_WIDTH",
    "DataType",
    "TypeError_",
    "byte_width",
    "check_value",
    "common_type",
    "compare",
    "float_to_value",
    "infer_type",
    "parse_type",
    "successor",
    "value_to_float",
    "Column",
    "Schema",
    "SchemaBuilder",
    "SchemaError",
    "schema_of",
]
