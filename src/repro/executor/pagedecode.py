"""Vectorized page decode: slotted-page bytes straight to column arrays.

The row engine decodes a page record-by-record (``SlottedPage.records``
then ``deserialize_row``), materializing one Python tuple per row.  The
columnar scan instead parses the slot directories with numpy, checks
every record's null bitmap in one shot, and gathers each fixed-width
column with a single fancy-index per column — no per-row Python objects
until an operator actually asks for rows.

Decoding works on a *span* of pages at once: the per-column numpy-call
overhead (a handful of microseconds each) is paid once per span instead
of once per page, which matters because a 4 KB page holds only a few
dozen records.

The decoder is deliberately partial: any span holding a record with a
NULL column (non-zero null bitmap), or whose structure does not match
the schema exactly, returns ``None`` and the caller falls back to
per-page (and ultimately per-record) decoding.  Decoded values are
bit-identical to the row path: the byte format (see ``storage.record``)
is the single source of truth for both.
"""

from __future__ import annotations

from datetime import date
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..storage.page import HEADER_SIZE, TOMBSTONE
from ..types import DataType, Schema
from .columnar import ColumnData

#: fixed-width columns: byte width, big-endian view dtype, native dtype
_FIXED = {
    DataType.INT: (8, ">i8", np.int64),
    DataType.FLOAT: (8, ">f8", np.float64),
}


def decode_pages_columns(
    schema: Schema, raws: Sequence[bytes]
) -> Optional[Tuple[List[ColumnData], int]]:
    """Decode a span of pages into ``(columns, num_rows)``, or ``None``
    to make the caller fall back to per-page decoding (NULLs present, or
    the bytes do not line up with *schema*).  Record order is page order
    then slot order — exactly the row scan's order."""
    offs_parts: List[np.ndarray] = []
    lens_parts: List[np.ndarray] = []
    base = 0
    for raw in raws:
        num_slots = (raw[0] << 8) | raw[1]
        if num_slots:
            slots = np.frombuffer(
                raw, dtype=">u2", count=num_slots * 2, offset=HEADER_SIZE
            ).reshape(-1, 2)
            live = slots[:, 1] != TOMBSTONE
            if live.all():
                offs_parts.append(slots[:, 0].astype(np.int64) + base)
                lens_parts.append(slots[:, 1].astype(np.int64))
            elif live.any():
                offs_parts.append(slots[:, 0][live].astype(np.int64) + base)
                lens_parts.append(slots[:, 1][live].astype(np.int64))
        base += len(raw)
    if not offs_parts:
        return [], 0
    joined = raws[0] if len(raws) == 1 else b"".join(raws)
    buf = np.frombuffer(joined, dtype=np.uint8)
    offs = (
        offs_parts[0] if len(offs_parts) == 1 else np.concatenate(offs_parts)
    )
    lens = (
        lens_parts[0] if len(lens_parts) == 1 else np.concatenate(lens_parts)
    )
    n = int(offs.shape[0])
    ncols = len(schema)
    bitmap_len = (ncols + 7) // 8
    if bool(buf[offs[:, None] + np.arange(bitmap_len)].any()):
        return None  # some record has NULL columns: caller falls back
    cur = offs + bitmap_len
    columns: List[ColumnData] = []
    for col in schema:
        dtype = col.dtype
        if dtype is DataType.TEXT:
            text_lens = (buf[cur].astype(np.int64) << 8) | buf[cur + 1]
            starts = cur + 2
            ends = starts + text_lens
            values = [
                joined[s:e].decode("utf-8")
                for s, e in zip(starts.tolist(), ends.tolist())
            ]
            data = np.empty(n, dtype=object)
            data[:] = values
            cur = ends
        elif dtype is DataType.BOOL:
            data = buf[cur] != 0
            cur = cur + 1
        elif dtype is DataType.DATE:
            ordinals = (
                np.ascontiguousarray(buf[cur[:, None] + np.arange(4)])
                .view(">u4")
                .ravel()
            )
            data = np.empty(n, dtype=object)
            data[:] = [date.fromordinal(o) for o in ordinals.tolist()]
            cur = cur + 4
        else:
            width, view, native = _FIXED[dtype]
            data = (
                np.ascontiguousarray(buf[cur[:, None] + np.arange(width)])
                .view(view)
                .ravel()
                .astype(native)
            )
            cur = cur + width
        columns.append((data, None))
    if not np.array_equal(cur, offs + lens):
        return None  # structural mismatch: let the row decoder diagnose
    return columns, n


def decode_page_columns(
    schema: Schema, raw: bytes
) -> Optional[Tuple[List[ColumnData], int]]:
    """Single-page decode (the span decoder over one page)."""
    return decode_pages_columns(schema, (raw,))
