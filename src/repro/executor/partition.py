"""Partitioning primitives shared by parallel exchange and Grace hashing.

Intra-query parallelism splits a read-only pipeline into ``degree``
disjoint partitions, one per worker.  Two schemes exist:

* **Page-range partitioning** (:func:`page_range`): worker ``w`` of ``d``
  scans the contiguous page slice ``[w*P//d, (w+1)*P//d)`` of a heap
  file.  Concatenating worker outputs in worker order reproduces the
  serial scan order exactly, which is what makes parallel plans
  bit-identical to serial ones.
* **Hash partitioning** (:func:`partition_of`): a row belongs to
  partition ``partition_hash(key) % degree``.  Equal keys always land in
  the same partition — the property co-partitioned parallel hash joins
  rely on — and the hash is stable across processes and interpreter
  runs (``PYTHONHASHSEED`` never leaks in).

``partition_hash`` is also the Grace hash join's spill-partitioning
function (it predates this module and moved here so both users share one
definition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple


@dataclass(frozen=True)
class PartitionContext:
    """Which partition of a parallel exchange this execution computes.

    Placed on the worker's :class:`~repro.executor.context.ExecContext`;
    partition-aware operators (partitioned scans, partition filters) read
    it at runtime.  ``worker`` is 0-based; ``degree`` is the total worker
    count.  Serial execution has no partition context at all.
    """

    worker: int
    degree: int

    def __post_init__(self):
        if self.degree < 1:
            raise ValueError("partition degree must be at least 1")
        if not 0 <= self.worker < self.degree:
            raise ValueError(
                f"worker {self.worker} out of range for degree {self.degree}"
            )


def partition_hash(key: Any) -> int:
    """Stable 32-bit hash used for hash partitioning.

    Properties the correctness arguments rely on:

    * deterministic across processes (no ``PYTHONHASHSEED`` dependence
      for strings — FNV-1a over the UTF-8 bytes),
    * equal SQL values hash equal even across numeric types
      (``1 == 1.0`` → integral floats are canonicalized to int),
    * ``True == 1`` follows from Python's own bool/int identity.
    """
    if isinstance(key, str):
        h = 2166136261
        for b in key.encode("utf-8"):
            h = ((h ^ b) * 16777619) & 0xFFFFFFFF
        return h
    if isinstance(key, float) and key.is_integer():
        key = int(key)
    return hash(key) & 0xFFFFFFFF


def partition_of(key: Any, degree: int) -> int:
    """Partition index for *key*: NULLs go to partition 0 (they never
    match a join, but every input row must land in exactly one partition
    so that hash partitioning is an exact partition of the multiset)."""
    if key is None:
        return 0
    return partition_hash(key) % degree


def page_range(num_pages: int, worker: int, degree: int) -> Tuple[int, int]:
    """Contiguous page slice ``[first, last)`` for *worker* of *degree*.

    Ranges are disjoint, cover ``[0, num_pages)`` exactly, and are in
    worker order — so worker-order concatenation preserves page order.
    """
    first = worker * num_pages // degree
    last = (worker + 1) * num_pages // degree
    return first, last
