"""Stateless row operators: filter, project, narrow, limit, materialize.

These are the batch engine's cheapest operators — each call transforms
one child batch with a single vectorized expression evaluation (or plain
slicing), so their per-row overhead is a list comprehension step rather
than a generator frame.

Filter, project, narrow and limit are fully columnar-aware: when the
child hands them a :class:`ColumnBatch` they stay columnar (mask filter,
kernel evaluation, column selection, slicing) and pass columns through
untouched, so a scan→filter→project pipeline never materializes row
tuples.  Materialize converts to rows (its cache is row storage).
"""

from __future__ import annotations

from typing import List, Optional

from ..expr import ExprError, compile_expr_batch, compile_predicate_batch
from ..expr.vector import compile_expr_columnar, compile_predicate_columnar
from ..physical import PFilter, PLimit, PMaterialize, PNarrow, PProject
from .columnar import ColumnBatch, as_row_batch, is_columnar
from .operator import Batch, Row, UnaryOperator, operator_for


@operator_for(PFilter)
class FilterOp(UnaryOperator):
    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.predicate = compile_predicate_batch(
            plan.predicate, plan.child.schema
        )
        self.predicate_columnar = None
        if ctx.columnar:
            try:
                self.predicate_columnar = compile_predicate_columnar(
                    plan.predicate, plan.child.schema
                )
            except ExprError:
                pass  # no kernel for this shape: row path below

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        predicate = self.predicate
        while True:
            batch = self.child.next_batch(max_rows)
            if batch is None:
                return None
            if is_columnar(batch):
                if self.predicate_columnar is not None:
                    out = batch.filter(self.predicate_columnar(batch))
                    if out:
                        return out
                    continue
                batch = as_row_batch(batch)
            mask = predicate(batch)
            out = [row for row, keep in zip(batch, mask) if keep]
            if out:
                return out


@operator_for(PProject)
class ProjectOp(UnaryOperator):
    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.fns = [
            compile_expr_batch(e, plan.child.schema) for e in plan.exprs
        ]
        self.kernels = None
        if ctx.columnar:
            try:
                self.kernels = [
                    compile_expr_columnar(e, plan.child.schema)
                    for e in plan.exprs
                ]
            except ExprError:
                pass  # no kernel for this shape: row path below

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        batch = self.child.next_batch(max_rows)
        if batch is None:
            return None
        if is_columnar(batch):
            if self.kernels is None:
                batch = as_row_batch(batch)
            else:
                return ColumnBatch(
                    self.plan.schema,
                    [kernel(batch) for kernel in self.kernels],
                    len(batch),
                )
        columns = [fn(batch) for fn in self.fns]
        if len(columns) == 1:
            return [(v,) for v in columns[0]]
        return list(zip(*columns))


@operator_for(PNarrow)
class NarrowOp(UnaryOperator):
    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        batch = self.child.next_batch(max_rows)
        if batch is None:
            return None
        positions = self.plan.positions
        if is_columnar(batch):
            return ColumnBatch(
                self.plan.schema,
                [batch.columns[i] for i in positions],
                len(batch),
            )
        if len(positions) == 1:
            i = positions[0]
            return [(row[i],) for row in batch]
        return [tuple(row[i] for i in positions) for row in batch]


@operator_for(PLimit)
class LimitOp(UnaryOperator):
    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self._remaining = 0

    def _open(self):
        super()._open()
        self._remaining = max(0, self.plan.count)

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self._remaining <= 0:
            return None
        # cap the child's production at what we still need, so upstream
        # actual row counts don't depend on the batch size
        cap = self._remaining if max_rows is None else min(
            max_rows, self._remaining
        )
        batch = self.child.next_batch(cap)
        if batch is None:
            return None
        if len(batch) > self._remaining:
            batch = (
                batch.slice(0, self._remaining)
                if is_columnar(batch)
                else batch[: self._remaining]
            )
        self._remaining -= len(batch)
        return batch


@operator_for(PMaterialize)
class MaterializeOp(UnaryOperator):
    """Cache the child's rows for repeated scans.

    The cache lives on the operator object — built on first demand,
    served across rescans (``close()``/``open()`` just rewinds the read
    position), gone when the execution's operator tree is dropped.  The
    child runs exactly once and is closed as soon as the cache is full.
    """

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self._cache: Optional[List[Row]] = None
        self._pos = 0
        self._child_open = False

    def _open(self):
        self._pos = 0
        if self._cache is None and not self._child_open:
            self.child.open()
            self._child_open = True

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self._cache is None:
            cache: List[Row] = []
            while True:
                batch = self.child.next_batch()
                if batch is None:
                    break
                cache.extend(as_row_batch(batch))
            self._cache = cache
            self.child.close()
            self._child_open = False
        batch = self._cache[self._pos : self._pos + self._target(max_rows)]
        if not batch:
            return None
        self._pos += len(batch)
        return batch

    def _close(self):
        if self._child_open:
            self.child.close()
            self._child_open = False
