"""Exchange operators: intra-query parallelism with exact accounting.

A parallel region is a ``PGather(PExchange(subplan))`` pair.  The gather
operator launches ``degree`` workers, each executing its own copy of the
exchange's subplan against one partition (a page-range slice for
``mode='pages'``, a hash partition for ``mode='hash'``), then merges the
worker streams deterministically:

* **concat** in worker order — equals serial order for page-range
  partitions, because worker ``w``'s pages all precede worker ``w+1``'s;
* **ordinal merge** — k-way merge on a hidden ordinal column assigned in
  serial scan order below the partition filters (co-partitioned hash
  joins), then stripped;
* **key merge** — k-way merge on sort keys with worker index as the
  tie-break, equal to the serial stable sort bit-for-bit.

Workers are forked ``multiprocessing`` processes.  Fork gives each worker
a copy-on-write snapshot of the whole engine — simulated disk, buffer
pool, plan tree — so the subplan needs no pickling and every worker reads
the disk through a *private* buffer pool for free (its pool is the forked
copy; mutations never reach the parent).  Each worker ships back its rows
plus three kinds of accounting, which the parent folds in so PR 1's
observability stays exact:

* per-node actuals (rows/loops/time/hits/reads/writes), merged into the
  parent's plan tree in ``walk_plan`` order;
* buffer/disk stat deltas, added to the parent's pool and disk counters;
* executor metrics (rows scanned, spills, ...), absorbed into the parent
  context;
* wait-event deltas (``io.*``/``lock.*`` accrued inside the worker, plus
  ``exchange.startup`` fork latency and the blocking ``exchange.send``)
  and per-table access deltas, merged into the parent's
  :class:`~repro.obs.WaitEventStats` and catalog — the parent itself
  times each pipe drain as ``exchange.recv``.

When forking is unavailable (non-fork platforms), the region is nested
inside another parallel region, or ``degree == 1``, the gather runs each
worker's partition inline, sequentially, in the parent process — same
rows, same merged actuals, no processes.  ``REPRO_PARALLEL_INLINE=1``
forces this path (useful under debuggers and coverage tools).
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
import traceback
from typing import List, Optional, Tuple

from ..expr import compile_expr, compile_expr_batch
from ..obs.trace import Span, Tracer, activate_tracer, active_tracer, trace_span
from .columnar import as_row_batch
from ..physical import (
    PExchange,
    PGather,
    POrdinal,
    PPartitionFilter,
    PhysicalError,
    walk_plan,
)
from .context import ExecContext, ExecMetrics
from .operator import Batch, Operator, Row, UnaryOperator, build_operator, operator_for
from .partition import PartitionContext, partition_of
from .sortutil import make_key_fn

#: actuals shipped per plan node: rows, loops, time_ms, hits, reads, writes
_NodeActuals = Tuple[
    Optional[int], int, Optional[float], Optional[int], Optional[int], Optional[int]
]


def fork_available() -> bool:
    """Can this platform run exchange workers as forked processes?"""
    if os.environ.get("REPRO_PARALLEL_INLINE"):
        return False
    return "fork" in multiprocessing.get_all_start_methods()


@operator_for(PPartitionFilter)
class PartitionFilterOp(UnaryOperator):
    """Keep the rows of the current worker's hash partition.

    Outside a worker (serial execution, EXPLAIN of a parallel plan run
    inline at degree 1) every row passes.
    """

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.key_fn = compile_expr_batch(plan.key, plan.child.schema)

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        part = self.ctx.partition
        while True:
            batch = self.child.next_batch(max_rows)
            if batch is None:
                return None
            if part is None or part.degree == 1:
                return batch
            batch = as_row_batch(batch)
            keys = self.key_fn(batch)
            out = [
                row
                for row, key in zip(batch, keys)
                if partition_of(key, part.degree) == part.worker
            ]
            if out:
                return out


@operator_for(POrdinal)
class OrdinalOp(UnaryOperator):
    """Append the running row number as a trailing column."""

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self._next_ord = 0

    def _open(self):
        super()._open()
        self._next_ord = 0

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        batch = self.child.next_batch(max_rows)
        if batch is None:
            return None
        start = self._next_ord
        self._next_ord += len(batch)
        return [
            row + (start + i,) for i, row in enumerate(as_row_batch(batch))
        ]


@operator_for(PExchange)
class ExchangeOp(Operator):
    """Never executes: the gather above drives the workers itself."""

    def __init__(self, plan, ctx):
        raise PhysicalError(
            "PExchange cannot execute standalone; wrap it in a PGather"
        )


@operator_for(PGather)
class GatherOp(Operator):
    """Run the child exchange's workers and merge their streams."""

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.exchange: PExchange = plan.child
        self._merged: Optional[List[Row]] = None
        self._pos = 0

    def _open(self):
        self._merged = None
        self._pos = 0

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self._merged is None:
            streams = self._run_workers()
            self._merged = self._merge(streams)
        n = self._target(max_rows)
        batch = self._merged[self._pos : self._pos + n]
        if not batch:
            return None
        self._pos += len(batch)
        return batch

    def _close(self):
        self._merged = None

    # -- worker execution ---------------------------------------------------

    def _run_workers(self) -> List[List[Row]]:
        ctx = self.ctx
        degree = self.exchange.degree
        ctx.metrics.parallel_regions += 1
        ctx.metrics.parallel_workers += degree
        # A nested gather (inside another region's worker) must not fork
        # again: its context already carries a partition.
        if degree == 1 or ctx.partition is not None or not fork_available():
            return [self._run_inline(w, degree) for w in range(degree)]
        return self._run_forked(degree)

    def _worker_context(self, worker: int, degree: int) -> ExecContext:
        ctx = self.ctx
        return ExecContext(
            ctx.pool,
            work_mem_pages=ctx.work_mem_pages,
            instrument=ctx.instrument,
            batch_size=ctx.batch_size,
            partition=PartitionContext(worker, degree),
            columnar=ctx.columnar,
            snapshot=ctx.snapshot,
        )

    def _drain(self, wctx: ExecContext) -> List[Row]:
        """Execute the subplan under *wctx* without resetting actuals (the
        enclosing ``run()`` reset them; worker contributions accumulate)."""
        root = build_operator(self.exchange.child, wctx)
        rows: List[Row] = []
        try:
            root.open()
            while True:
                batch = root.next_batch()
                if batch is None:
                    break
                rows.extend(as_row_batch(batch))
        finally:
            try:
                root.close()
            finally:
                wctx.cleanup()
        return rows

    def _run_inline(self, worker: int, degree: int) -> List[Row]:
        wctx = self._worker_context(worker, degree)
        with trace_span("worker") as sp:
            sp.set_attr("worker", str(worker))
            rows = self._drain(wctx)
            sp.add("rows", float(len(rows)))
        self.ctx.metrics.absorb(wctx.metrics)
        self.exchange.start_loop()
        self.exchange.accumulate_actuals(rows=len(rows))
        return rows

    def _run_forked(self, degree: int) -> List[List[Row]]:
        mp = multiprocessing.get_context("fork")
        waits = self.ctx.pool.waits
        workers = []
        for w in range(degree):
            recv_end, send_end = mp.Pipe(duplex=False)
            # perf_counter is CLOCK_MONOTONIC: system-wide, so the forked
            # child can measure fork-to-first-instruction latency against
            # this parent-side stamp ("exchange.startup").
            self._fork_t0 = time.perf_counter()
            proc = mp.Process(
                target=self._worker_main,
                args=(w, degree, send_end),
                daemon=True,
            )
            proc.start()
            send_end.close()  # parent keeps only the read end
            workers.append((proc, recv_end))

        streams: List[List[Row]] = []
        payloads = []
        failure: Optional[str] = None
        for w, (proc, recv_end) in enumerate(workers):
            # Receive before join: a worker blocks in send() until the
            # parent drains the pipe, so joining first would deadlock.
            try:
                t0 = time.perf_counter()
                payload = recv_end.recv()
                if waits is not None:
                    waits.record("exchange.recv", time.perf_counter() - t0)
            except EOFError:
                payload = {"error": f"worker {w} died without a result"}
            else:
                if "error" not in payload:
                    # the worker follows its payload with the seconds its
                    # (blocking) send spent waiting on this pipe
                    try:
                        send_wait = recv_end.recv()
                    except EOFError:
                        send_wait = 0.0
                    if waits is not None and send_wait:
                        waits.record("exchange.send", send_wait)
            finally:
                recv_end.close()
            proc.join()
            if "error" in payload and failure is None:
                failure = f"parallel worker {w} failed:\n{payload['error']}"
            payloads.append(payload)
        if failure is not None:
            raise PhysicalError(failure)

        for payload in payloads:
            streams.append(payload["rows"])
            self._fold_payload(payload)
        return streams

    def _worker_main(self, worker: int, degree: int, conn) -> None:
        """Runs in the forked child: execute one partition, ship results."""
        try:
            startup = time.perf_counter() - self._fork_t0
            ctx = self.ctx
            pool = ctx.pool  # the fork's private copy-on-write pool
            buf0 = pool.stats.snapshot()
            io0 = pool.disk.stats.snapshot()
            waits = pool.waits  # private COW copy; deltas ship back
            w0 = waits.snapshot() if waits is not None else {}
            if waits is not None:
                waits.record("exchange.startup", max(0.0, startup))
            subplan = self.exchange.child
            tables = {
                info.name: info
                for info in (
                    getattr(node, "table", None) for node in walk_plan(subplan)
                )
                if info is not None and hasattr(info, "access")
            }
            t0 = {name: info.access.snapshot() for name, info in tables.items()}
            wctx = self._worker_context(worker, degree)
            # Zero the (private) actuals so what ships is this worker's
            # contribution alone.
            subplan.reset_actuals()
            # Request tracing across the fork: the COW-inherited tracer
            # tells us the request's identity and clock zero; a *fresh*
            # tracer (same trace_id, same t0, disjoint span-id range per
            # worker) records this worker's subtree, which ships home in
            # the payload and is grafted under the parent's execute span.
            parent_tracer = active_tracer()
            worker_root = None
            if parent_tracer is not None and parent_tracer.enabled:
                wtracer = Tracer(
                    enabled=True,
                    trace_id=parent_tracer.trace_id,
                    id_base=(worker + 1) * 1_000_000,
                    t0=parent_tracer._t0,
                )
                with activate_tracer(wtracer):
                    with wtracer.span("worker") as sp:
                        sp.set_attr("worker", str(worker))
                        rows = self._drain(wctx)
                        sp.add("rows", float(len(rows)))
                worker_root = wtracer.root.to_dict()
            else:
                rows = self._drain(wctx)
            buf = pool.stats.delta(buf0)
            io = pool.disk.stats.delta(io0)
            m = wctx.metrics
            t_send = time.perf_counter()
            conn.send(
                {
                    "rows": rows,
                    "actuals": [
                        (
                            node.actual_rows,
                            node.actual_loops,
                            node.actual_time_ms,
                            node.actual_hits,
                            node.actual_reads,
                            node.actual_writes,
                        )
                        for node in walk_plan(subplan)
                    ],
                    "metrics": (
                        m.rows_scanned,
                        m.rows_emitted,
                        m.comparisons,
                        m.hash_probes,
                        m.temp_files,
                        m.spills,
                        m.parallel_regions,
                        m.parallel_workers,
                        m.pages_skipped,
                    ),
                    "buf": (buf.hits, buf.misses, buf.evictions, buf.dirty_writebacks),
                    "io": (io.reads, io.writes, io.seq_reads, io.allocations),
                    "waits": waits.delta(w0) if waits is not None else {},
                    "taccess": {
                        name: info.access.delta(t0[name])
                        for name, info in tables.items()
                    },
                    "spans": worker_root,
                }
            )
            # the payload send blocks until the parent drains the pipe;
            # ship how long that took as the worker's "exchange.send" wait
            conn.send(time.perf_counter() - t_send)
        except BaseException:
            try:
                conn.send({"error": traceback.format_exc()})
            except Exception:
                pass
        finally:
            conn.close()

    def _fold_payload(self, payload: dict) -> None:
        """Fold one worker's accounting into the parent's world."""
        ctx = self.ctx
        # per-node actuals, in the same walk_plan order the worker used
        # (the forked tree is structurally identical to the parent's)
        nodes = list(walk_plan(self.exchange.child))
        for node, (rows, loops, time_ms, hits, reads, writes) in zip(
            nodes, payload["actuals"]
        ):
            if rows is None and not loops:
                continue  # node never started in this worker
            node.actual_loops += loops
            node.accumulate_actuals(
                rows=rows or 0,
                time_ms=time_ms,
                hits=hits,
                reads=reads,
                writes=writes,
            )
        ctx.metrics.absorb(ExecMetrics(*payload["metrics"]))
        hits, misses, evictions, writebacks = payload["buf"]
        stats = ctx.pool.stats
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.dirty_writebacks += writebacks
        reads, writes, seq_reads, allocations = payload["io"]
        io = ctx.pool.disk.stats
        io.reads += reads
        io.writes += writes
        io.seq_reads += seq_reads
        io.allocations += allocations
        if ctx.pool.waits is not None:
            ctx.pool.waits.merge(payload.get("waits", {}))
        taccess = payload.get("taccess", {})
        if taccess:
            tables = {
                info.name: info
                for info in (
                    getattr(node, "table", None)
                    for node in walk_plan(self.exchange.child)
                )
                if info is not None and hasattr(info, "access")
            }
            for name, delta in taccess.items():
                if name in tables:
                    tables[name].access.add(delta)
        spans = payload.get("spans")
        if spans is not None:
            tracer = active_tracer()
            if tracer is not None and tracer.enabled:
                tracer.graft(Span.from_dict(spans))
        self.exchange.start_loop()
        self.exchange.accumulate_actuals(rows=len(payload["rows"]))

    # -- merging ------------------------------------------------------------

    def _merge(self, streams: List[List[Row]]) -> List[Row]:
        plan = self.plan
        if plan.ordinal is not None:
            return self._merge_on_ordinal(streams, plan.ordinal)
        if plan.merge_keys:
            return self._merge_on_keys(streams)
        merged: List[Row] = []
        for rows in streams:
            merged.extend(rows)
        return merged

    @staticmethod
    def _merge_on_ordinal(streams: List[List[Row]], pos: int) -> List[Row]:
        """K-way merge on the ordinal column at *pos*, stripping it.

        Worker streams are already ordinal-sorted (ordinals are assigned
        in scan order below the partition filter); the worker index
        breaks — purely defensively — ties that cannot occur, since each
        ordinal lives in exactly one partition.
        """
        decorated = [
            [(row[pos], w, i, row) for i, row in enumerate(rows)]
            for w, rows in enumerate(streams)
        ]
        return [
            row[:pos] + row[pos + 1 :]
            for _, _, _, row in heapq.merge(*decorated)
        ]

    def _merge_on_keys(self, streams: List[List[Row]]) -> List[Row]:
        """K-way merge on the gather's sort keys, worker index as the
        tie-break.  Each worker sorted its partition stably and page-range
        partitions are in scan order, so this equals the serial stable
        sort exactly."""
        schema = self.exchange.schema
        evaluators = [compile_expr(e, schema) for e, _ in self.plan.merge_keys]
        directions = [asc for _, asc in self.plan.merge_keys]
        key_fn = make_key_fn(evaluators, directions)
        decorated = [
            [(key_fn(row), w, i, row) for i, row in enumerate(rows)]
            for w, rows in enumerate(streams)
        ]
        return [row for _, _, _, row in heapq.merge(*decorated)]
