"""Aggregate accumulators: COUNT/SUM/AVG/MIN/MAX with DISTINCT support.

SQL NULL semantics: aggregates ignore NULL inputs; SUM/AVG/MIN/MAX of an
empty (or all-NULL) group is NULL; COUNT is 0.  ``COUNT(*)`` counts rows
regardless of values.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..expr import AggCall, AggFunc, Expr, compile_expr
from ..types import Schema


class Accumulator:
    """One aggregate's running state for one group."""

    __slots__ = ("func", "distinct", "count", "total", "extreme", "seen")

    def __init__(self, func: AggFunc, distinct: bool):
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total: Any = None
        self.extreme: Any = None
        self.seen: Optional[set] = set() if distinct else None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.func is AggFunc.SUM or self.func is AggFunc.AVG:
            self.total = value if self.total is None else self.total + value
        elif self.func is AggFunc.MIN:
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif self.func is AggFunc.MAX:
            if self.extreme is None or value > self.extreme:
                self.extreme = value

    def add_star(self) -> None:
        """COUNT(*): every row counts."""
        self.count += 1

    def add_many(self, values: Sequence[Any]) -> None:
        """Fold a column of values in one call (same result as ``add`` per
        value, in the same left-to-right order)."""
        vals = [v for v in values if v is not None]
        if self.seen is not None:
            fresh = []
            for v in vals:
                if v not in self.seen:
                    self.seen.add(v)
                    fresh.append(v)
            vals = fresh
        if not vals:
            return
        self.count += len(vals)
        func = self.func
        if func is AggFunc.SUM or func is AggFunc.AVG:
            # accumulate in the same order as repeated add() so float sums
            # are bit-identical at every batch size
            total = self.total
            for v in vals:
                total = v if total is None else total + v
            self.total = total
        elif func is AggFunc.MIN:
            low = min(vals)
            if self.extreme is None or low < self.extreme:
                self.extreme = low
        elif func is AggFunc.MAX:
            high = max(vals)
            if self.extreme is None or high > self.extreme:
                self.extreme = high

    def add_star_many(self, n: int) -> None:
        self.count += n

    def result(self) -> Any:
        if self.func is AggFunc.COUNT:
            return self.count
        if self.func is AggFunc.SUM:
            return self.total
        if self.func is AggFunc.AVG:
            if self.count == 0:
                return None
            return self.total / self.count
        return self.extreme

    # -- two-phase (partial/final) protocol --------------------------------------

    def partial_state(self) -> Tuple[Any, ...]:
        """Mergeable snapshot of this accumulator, shipped from a parallel
        worker to the final aggregation.

        The planner only pushes partial aggregation when merging is exact
        (COUNT/MIN/MAX of anything; SUM/AVG of integers — float addition
        is not associative, so float SUM/AVG stays single-phase).
        DISTINCT ships its value set (sorted by repr so worker output is
        deterministic) and lets the final phase replay it, collapsing
        duplicates across workers.
        """
        seen = (
            tuple(sorted(self.seen, key=repr)) if self.seen is not None else None
        )
        return (self.count, self.total, self.extreme, seen)

    def absorb(self, state: Tuple[Any, ...]) -> None:
        """Merge a worker's :meth:`partial_state` into this accumulator."""
        count, total, extreme, seen = state
        if self.seen is not None:
            # Replay distinct values through add(): values already seen in
            # another worker's partition must count exactly once.
            for value in seen:
                self.add(value)
            return
        self.count += count
        if total is not None:
            self.total = total if self.total is None else self.total + total
        if extreme is not None:
            if self.func is AggFunc.MIN:
                if self.extreme is None or extreme < self.extreme:
                    self.extreme = extreme
            elif self.func is AggFunc.MAX:
                if self.extreme is None or extreme > self.extreme:
                    self.extreme = extreme


class AggregateState:
    """Per-group accumulator row plus evaluation plumbing."""

    def __init__(self, aggs: Sequence[AggCall], child_schema: Schema):
        self.aggs = list(aggs)
        self.arg_fns: List[Optional[Callable[[tuple], Any]]] = []
        for agg in self.aggs:
            if agg.arg is None:
                self.arg_fns.append(None)
            else:
                self.arg_fns.append(compile_expr(agg.arg, child_schema))

    def new_group(self) -> List[Accumulator]:
        return [Accumulator(a.func, a.distinct) for a in self.aggs]

    def update(self, accs: List[Accumulator], row: tuple) -> None:
        for acc, agg, fn in zip(accs, self.aggs, self.arg_fns):
            if fn is None:
                acc.add_star()
            else:
                acc.add(fn(row))

    def finish(self, accs: List[Accumulator]) -> Tuple[Any, ...]:
        return tuple(acc.result() for acc in accs)

    def partial(self, accs: List[Accumulator]) -> Tuple[Any, ...]:
        return tuple(acc.partial_state() for acc in accs)


def compile_group_key(
    group_exprs: Sequence[Expr], child_schema: Schema
) -> Callable[[tuple], Tuple[Any, ...]]:
    fns = [compile_expr(g, child_schema) for g in group_exprs]
    return lambda row: tuple(fn(row) for fn in fns)
