"""Blocking operators: external sort, aggregation, distinct.

Sort spills fixed-size runs through temp heap files and k-way-merges
them, exactly as the generator engine did (run boundaries are sliced to
``max_rows`` regardless of the producer's batch size, so spill behaviour
is batch-size independent).  Aggregation evaluates group keys and
argument expressions once per batch.
"""

from __future__ import annotations

import heapq
from itertools import islice
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..expr import ExprError, compile_expr, compile_expr_batch
from ..expr.vector import compile_expr_columnar
from ..physical import PAggregate, PDistinct, PSort
from .aggregate import Accumulator, AggregateState
from .columnar import as_row_batch, is_columnar, kernel_values
from .operator import Batch, Row, UnaryOperator, operator_for
from .sortutil import make_key_fn


@operator_for(PSort)
class SortOp(UnaryOperator):
    """External merge sort through temp files when input exceeds work
    memory; pure in-memory sort otherwise."""

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        child_schema = plan.child.schema
        evaluators = [compile_expr(e, child_schema) for e, _ in plan.keys]
        directions = [asc for _, asc in plan.keys]
        self.key_fn = make_key_fn(evaluators, directions)
        self._sorted: Optional[List[Row]] = None
        self._pos = 0
        self._merge: Optional[Iterator[Row]] = None

    def _open(self):
        super()._open()
        self._sorted = None
        self._pos = 0
        self._merge = None

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self._sorted is None and self._merge is None:
            self._build()
        n = self._target(max_rows)
        if self._sorted is not None:
            batch = self._sorted[self._pos : self._pos + n]
            if not batch:
                return None
            self._pos += len(batch)
            return batch
        batch = list(islice(self._merge, n))
        return batch or None

    def _build(self) -> None:
        ctx = self.ctx
        plan = self.plan
        child_schema = plan.child.schema
        key_fn = self.key_fn
        max_rows = ctx.max_rows_in_memory(child_schema)

        runs = []
        buffer: List[Row] = []
        while True:
            batch = self.child.next_batch()
            if batch is None:
                break
            batch = as_row_batch(batch)
            i = 0
            while i < len(batch):
                take = min(max_rows - len(buffer), len(batch) - i)
                buffer.extend(batch[i : i + take])
                i += take
                if len(buffer) >= max_rows:
                    buffer.sort(key=key_fn)
                    runs.append(_write_run(ctx, child_schema, buffer))
                    buffer = []
        if not runs:
            buffer.sort(key=key_fn)
            self._sorted = buffer
            return
        if buffer:
            buffer.sort(key=key_fn)
            runs.append(_write_run(ctx, child_schema, buffer))
        ctx.metrics.spills += 1
        self._merge = self._merge_runs(runs)

    def _merge_runs(self, runs) -> Iterator[Row]:
        """k-way merge of sorted run files."""
        key_fn = self.key_fn
        streams = [run_file.scan_rows() for run_file in runs]
        heap: List[Tuple[Any, int, Row]] = []
        for i, stream in enumerate(streams):
            first = next(stream, None)
            if first is not None:
                heapq.heappush(heap, (key_fn(first), i, first))
        while heap:
            _, i, row = heapq.heappop(heap)
            yield row
            nxt = next(streams[i], None)
            if nxt is not None:
                heapq.heappush(heap, (key_fn(nxt), i, nxt))
        for run_file in runs:
            self.ctx.drop_temp(run_file)

    def _close(self):
        self._sorted = None
        self._merge = None
        super()._close()


def _write_run(ctx, schema, rows: List[Row]):
    temp = ctx.create_temp(schema)
    for row in rows:
        temp.insert(row)
    return temp


@operator_for(PAggregate)
class AggregateOp(UnaryOperator):
    """Hash aggregation (or stream aggregation over sorted input).

    ``mode="partial"`` emits mergeable accumulator states instead of
    results; ``mode="final"`` consumes partial-state rows (group values
    first, one state per aggregate after) and produces the real results.
    A final aggregate never compiles expressions — its child's rows are
    positional by construction.

    Under a columnar context only key/argument *extraction* is
    vectorized: group keys and aggregate arguments come from columnar
    kernels as plain Python lists, then flow into the exact same
    accumulator fold as the row engine.  Accumulation stays strictly
    sequential on purpose — float ``SUM``/``AVG`` are order- and
    association-sensitive, and bit-identical results across engines are
    part of the differential-testing contract.
    """

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.group_kernels = None
        self.arg_kernels = None
        if plan.mode == "final":
            self.state = None
            self.group_fns = []
            self.arg_fns = []
        else:
            child_schema = plan.child.schema
            self.state = AggregateState(plan.aggs, child_schema)
            self.group_fns = [
                compile_expr_batch(g, child_schema) for g in plan.group_exprs
            ]
            self.arg_fns = [
                None
                if agg.arg is None
                else compile_expr_batch(agg.arg, child_schema)
                for agg in plan.aggs
            ]
            if ctx.columnar:
                try:
                    self.group_kernels = [
                        compile_expr_columnar(g, child_schema)
                        for g in plan.group_exprs
                    ]
                    self.arg_kernels = [
                        None
                        if agg.arg is None
                        else compile_expr_columnar(agg.arg, child_schema)
                        for agg in plan.aggs
                    ]
                except ExprError:
                    self.group_kernels = None
                    self.arg_kernels = None
        self._out: Optional[Iterator[Row]] = None

    def _open(self):
        super()._open()
        self._out = None

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self._out is None:
            self._out = self._aggregate()
        batch = list(islice(self._out, self._target(max_rows)))
        return batch or None

    def _prepared(self, batch: Batch) -> Batch:
        """Row view of *batch* when the columnar kernels are unusable."""
        if is_columnar(batch) and self.group_kernels is None:
            return batch.to_rows()
        return batch

    def _group_keys(self, batch: Batch) -> List[Tuple[Any, ...]]:
        if is_columnar(batch):
            columns = [
                kernel_values(*kernel(batch))
                for kernel in self.group_kernels
            ]
        else:
            columns = [fn(batch) for fn in self.group_fns]
        if len(columns) == 1:
            return [(v,) for v in columns[0]]
        return list(zip(*columns))

    def _arg_columns(self, batch: Batch) -> List[Optional[List[Any]]]:
        if is_columnar(batch):
            return [
                None if kernel is None else kernel_values(*kernel(batch))
                for kernel in self.arg_kernels
            ]
        return [None if fn is None else fn(batch) for fn in self.arg_fns]

    def _update_accs(self, accs, arg_columns, indices) -> None:
        """Fold the rows at *indices* of the current batch into *accs*."""
        n = len(indices)
        for acc, column in zip(accs, arg_columns):
            if column is None:
                acc.add_star_many(n)
            elif n == len(column):
                acc.add_many(column)
            elif isinstance(indices, range):
                acc.add_many(column[indices.start : indices.stop])
            else:
                acc.add_many([column[i] for i in indices])

    def _aggregate(self) -> Iterator[Row]:
        if self.plan.mode == "final":
            return self._final_groups()
        if self.plan.streaming and self.plan.group_exprs:
            return self._stream_groups()
        if not self.plan.group_exprs:
            return self._global()
        return self._hash_groups()

    def _finish(self, accs) -> Row:
        """Result row tail for one group: values, or states when partial."""
        if self.plan.mode == "partial":
            return self.state.partial(accs)
        return self.state.finish(accs)

    def _final_groups(self) -> Iterator[Row]:
        """Merge partial-state rows: group values at positions ``[0, G)``,
        one accumulator state per aggregate after.

        Group output order is first-seen order over the input stream; for
        a worker-order concatenation of page-partitioned workers that is
        exactly the serial aggregate's first-seen order.
        """
        plan = self.plan
        num_groups = len(plan.group_exprs)
        groups: Dict[Tuple[Any, ...], list] = {}
        while True:
            batch = self.child.next_batch()
            if batch is None:
                break
            for row in as_row_batch(batch):
                key = row[:num_groups]
                accs = groups.get(key)
                if accs is None:
                    groups[key] = accs = [
                        Accumulator(a.func, a.distinct) for a in plan.aggs
                    ]
                for acc, state in zip(accs, row[num_groups:]):
                    acc.absorb(state)
        if not groups and not num_groups:
            # global aggregate over zero partial rows (cannot happen with
            # well-formed workers, which always emit one global row) —
            # fall back to empty-input semantics
            yield tuple(
                Accumulator(a.func, a.distinct).result() for a in plan.aggs
            )
            return
        for key, accs in groups.items():
            yield key + tuple(acc.result() for acc in accs)

    def _stream_groups(self) -> Iterator[Row]:
        state = self.state
        current_key: Optional[Tuple[Any, ...]] = None
        accs = None
        started = False
        while True:
            batch = self.child.next_batch()
            if batch is None:
                break
            batch = self._prepared(batch)
            arg_columns = self._arg_columns(batch)
            keys = self._group_keys(batch)
            # fold each run of equal keys in one shot (input is sorted on
            # the group keys, so runs are contiguous)
            start = 0
            total = len(keys)
            while start < total:
                key = keys[start]
                end = start + 1
                while end < total and keys[end] == key:
                    end += 1
                if not started or key != current_key:
                    if started:
                        yield current_key + self._finish(accs)
                    current_key = key
                    accs = state.new_group()
                    started = True
                self._update_accs(accs, arg_columns, range(start, end))
                start = end
        if started:
            yield current_key + self._finish(accs)

    def _global(self) -> Iterator[Row]:
        state = self.state
        accs = state.new_group()
        while True:
            batch = self.child.next_batch()
            if batch is None:
                break
            batch = self._prepared(batch)
            arg_columns = self._arg_columns(batch)
            self._update_accs(accs, arg_columns, range(len(batch)))
        yield self._finish(accs)

    def _hash_groups(self) -> Iterator[Row]:
        state = self.state
        groups: Dict[Tuple[Any, ...], list] = {}
        while True:
            batch = self.child.next_batch()
            if batch is None:
                break
            batch = self._prepared(batch)
            arg_columns = self._arg_columns(batch)
            # bucket batch positions by key, then fold group by group
            buckets: Dict[Tuple[Any, ...], List[int]] = {}
            for i, key in enumerate(self._group_keys(batch)):
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = bucket = []
                bucket.append(i)
            for key, indices in buckets.items():
                accs = groups.get(key)
                if accs is None:
                    groups[key] = accs = state.new_group()
                self._update_accs(accs, arg_columns, indices)
        for key, accs in groups.items():
            yield key + self._finish(accs)

    def _close(self):
        self._out = None
        super()._close()


@operator_for(PDistinct)
class DistinctOp(UnaryOperator):
    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self._seen = set()

    def _open(self):
        super()._open()
        self._seen = set()

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        seen = self._seen
        while True:
            batch = self.child.next_batch(max_rows)
            if batch is None:
                return None
            out = []
            for row in as_row_batch(batch):
                if row not in seen:
                    seen.add(row)
                    out.append(row)
            if out:
                return out
