"""Batched operator execution engine with real I/O accounting.

Operators implement ``open() / next_batch() / close()`` (see
:mod:`.operator`); ``run``/``execute`` in :mod:`.run` are the facade the
rest of the engine uses.
"""

from .aggregate import Accumulator, AggregateState, compile_group_key
from .context import ExecContext, ExecMetrics, read_spill, spill_rows
from .exchange import fork_available
from .operator import BatchCursor, Operator, build_operator, operator_for
from .partition import (
    PartitionContext,
    page_range,
    partition_hash,
    partition_of,
)
from .run import execute, run
from .sortutil import SortKey, cmp_values, make_key_fn, sorted_rows

__all__ = [
    "Accumulator",
    "AggregateState",
    "compile_group_key",
    "ExecContext",
    "ExecMetrics",
    "read_spill",
    "spill_rows",
    "fork_available",
    "BatchCursor",
    "Operator",
    "build_operator",
    "operator_for",
    "PartitionContext",
    "page_range",
    "partition_hash",
    "partition_of",
    "execute",
    "run",
    "SortKey",
    "cmp_values",
    "make_key_fn",
    "sorted_rows",
]
