"""Volcano-style execution engine with real I/O accounting."""

from .aggregate import Accumulator, AggregateState, compile_group_key
from .context import ExecContext, ExecMetrics, read_spill, spill_rows
from .run import execute, run
from .sortutil import SortKey, cmp_values, make_key_fn, sorted_rows

__all__ = [
    "Accumulator",
    "AggregateState",
    "compile_group_key",
    "ExecContext",
    "ExecMetrics",
    "read_spill",
    "spill_rows",
    "execute",
    "run",
    "SortKey",
    "cmp_values",
    "make_key_fn",
    "sorted_rows",
]
