"""Execution facade: physical plan -> rows, via the batched Operator engine.

The operators themselves live in the per-family modules (``scans``,
``joins``, ``agg_sort``, ``misc``) as :class:`~.operator.Operator`
subclasses; importing this module registers all of them.  This module
keeps the two entry points the rest of the engine builds on:

``run(plan, ctx)`` executes to completion and returns the row list,
resetting per-node actuals first and annotating them as it goes (what is
measured follows ``ctx.instrument`` — see :mod:`repro.obs`): OFF is bare
batches, ROWS annotates actual row/loop counts, FULL adds per-batch
wall-clock and attributed buffer/disk I/O (inclusive of children,
PostgreSQL-style) — the level ``EXPLAIN ANALYZE`` runs at.

``execute(plan, ctx)`` is the streaming facade: a row iterator over the
operator tree for consumers that may stop early.  Both entry points bump
``ctx.metrics.rows_emitted`` batch by batch as output is drained, so the
counter is correct even for abandoned iterations.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple

# importing the operator families populates the plan-type registry
from . import agg_sort, exchange, joins, misc, scans  # noqa: F401
from .columnar import as_row_batch
from .context import ExecContext
from .operator import Operator, build_operator
from ..physical import PhysicalPlan

Row = Tuple[Any, ...]


def execute(plan: PhysicalPlan, ctx: ExecContext) -> Iterator[Row]:
    """Stream *plan*'s rows lazily (nothing runs until iterated)."""
    root = build_operator(plan, ctx)
    return _stream(root, ctx)


def _stream(root: Operator, ctx: ExecContext) -> Iterator[Row]:
    root.open()
    try:
        while True:
            batch = root.next_batch()
            if batch is None:
                break
            ctx.metrics.rows_emitted += len(batch)
            yield from as_row_batch(batch)
    finally:
        root.close()


def run(plan: PhysicalPlan, ctx: ExecContext) -> List[Row]:
    """Execute to completion, annotating actuals on every node."""
    plan.reset_actuals()
    root = build_operator(plan, ctx)
    rows: List[Row] = []
    activity = ctx.activity
    if activity is not None:
        activity.current_operator = type(plan).__name__
    try:
        root.open()
        while True:
            batch = root.next_batch()
            if batch is None:
                break
            ctx.metrics.rows_emitted += len(batch)
            rows.extend(as_row_batch(batch))
            if activity is not None:
                activity.rows_produced = len(rows)
    finally:
        try:
            root.close()
        finally:
            ctx.cleanup()
    return rows
