"""The Volcano-style executor: physical plan -> row iterator.

``execute(plan, ctx)`` builds a generator tree mirroring the plan.  All page
access goes through the buffer pool, so I/O counters reflect real behaviour
(including temp-file spill from sorts, hash joins and block nested loops).

``run(plan, ctx)`` drains the iterator, annotating per-node actuals (for
EXPLAIN ANALYZE-style output and the cost-validation experiments) and
cleans up temp files.  How much is measured follows
``ctx.instrument`` (:class:`repro.obs.InstrumentLevel`):

* ``OFF``  — bare iteration, no annotation;
* ``ROWS`` — actual row and loop counts (the cheap default);
* ``FULL`` — additionally times every ``next()`` call and attributes the
  buffer-pool hits and disk reads/writes that happened inside it to the
  operator (inclusive of its children, PostgreSQL-style) — the level
  ``EXPLAIN ANALYZE`` runs at.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Iterator, List, Optional, Tuple

from ..obs import InstrumentLevel

from ..expr import compile_expr, compile_predicate
from ..physical import (
    PAggregate,
    PDistinct,
    PFilter,
    PHashJoin,
    PIndexNLJoin,
    PIndexOnlyScan,
    PIndexScan,
    PLimit,
    PMaterialize,
    PNarrow,
    PNestedLoopJoin,
    PProject,
    PSeqScan,
    PSort,
    PSortMergeJoin,
    PhysicalError,
    PhysicalPlan,
    RangeBound,
)
from ..catalog import IndexKind
from ..types import successor
from .aggregate import AggregateState, compile_group_key
from .context import ExecContext
from .sortutil import cmp_values, make_key_fn

Row = Tuple[Any, ...]


def execute(plan: PhysicalPlan, ctx: ExecContext) -> Iterator[Row]:
    """Build the iterator tree for *plan* (lazily; nothing runs yet)."""
    handler = _DISPATCH.get(type(plan))
    if handler is None:
        raise PhysicalError(f"no executor for {type(plan).__name__}")
    return handler(plan, ctx)


def run(plan: PhysicalPlan, ctx: ExecContext) -> List[Row]:
    """Execute to completion, annotating actuals on every node."""
    _reset_actuals(plan)
    try:
        rows = list(_counted(plan, execute(plan, ctx), ctx))
    finally:
        ctx.cleanup()
    ctx.metrics.rows_emitted += len(rows)
    return rows


def _reset_actuals(plan: PhysicalPlan) -> None:
    plan.actual_rows = None  # wrappers fill it in (stays None at OFF)
    plan.actual_loops = 0
    plan.actual_time_ms = None
    plan.actual_hits = None
    plan.actual_reads = None
    plan.actual_writes = None
    if isinstance(plan, PMaterialize) and hasattr(plan, "_cache"):
        del plan._cache
    for child in plan.children():
        _reset_actuals(child)


def _counted(
    plan: PhysicalPlan, rows: Iterator[Row], ctx: ExecContext
) -> Iterator[Row]:
    """Wrap a node's iterator with the measurement the context asks for."""
    level = ctx.instrument
    if level is InstrumentLevel.ROWS:
        return _row_counted(plan, rows)
    if level is InstrumentLevel.OFF:
        return rows
    return _instrumented(plan, rows, ctx)


def _row_counted(plan: PhysicalPlan, rows: Iterator[Row]) -> Iterator[Row]:
    """Count rows and loops through a node.  Accumulates across rescans (a
    nested loop's inner side runs once per outer block)."""
    plan.actual_loops += 1
    count = 0
    for row in rows:
        count += 1
        yield row
    plan.actual_rows = (plan.actual_rows or 0) + count


def _instrumented(
    plan: PhysicalPlan, rows: Iterator[Row], ctx: ExecContext
) -> Iterator[Row]:
    """FULL-level wrapper: per-``next()`` wall-clock and attributed I/O.

    Each interval between entering and leaving ``next(rows)`` belongs to
    this operator (and, inclusively, its children — their iterators only
    advance inside it).  Buffer/disk counter deltas over the interval give
    the attributed hits/reads/writes; work a *sibling* does between this
    node's calls is never charged here.  Totals accumulate across rescans;
    partial results are recorded even when the consumer abandons the
    iterator early (LIMIT) or an operator raises.
    """
    plan.actual_loops += 1
    bstats = ctx.pool.stats
    dstats = ctx.pool.disk.stats
    perf = time.perf_counter
    count = 0
    total_s = 0.0
    hits = reads = writes = 0
    try:
        while True:
            h0 = bstats.hits
            r0 = dstats.reads
            w0 = dstats.writes
            t0 = perf()
            try:
                row = next(rows)
            except StopIteration:
                total_s += perf() - t0
                hits += bstats.hits - h0
                reads += dstats.reads - r0
                writes += dstats.writes - w0
                break
            total_s += perf() - t0
            hits += bstats.hits - h0
            reads += dstats.reads - r0
            writes += dstats.writes - w0
            count += 1
            yield row
    finally:
        plan.actual_rows = (plan.actual_rows or 0) + count
        plan.actual_time_ms = (plan.actual_time_ms or 0.0) + total_s * 1000.0
        plan.actual_hits = (plan.actual_hits or 0) + hits
        plan.actual_reads = (plan.actual_reads or 0) + reads
        plan.actual_writes = (plan.actual_writes or 0) + writes


# -- scans ------------------------------------------------------------------------


def _seq_scan(plan: PSeqScan, ctx: ExecContext) -> Iterator[Row]:
    predicate = (
        compile_predicate(plan.predicate, plan.schema)
        if plan.predicate is not None
        else None
    )
    for row in plan.table.heap.scan_rows():
        ctx.metrics.rows_scanned += 1
        if predicate is None or predicate(row):
            yield row


def _index_bounds(plan) -> Tuple[Any, Any, bool, bool]:
    low = None if plan.low.unbounded else plan.low.value
    high = None if plan.high.unbounded else plan.high.value
    return low, high, plan.low.inclusive, plan.high.inclusive


def _index_scan(plan: PIndexScan, ctx: ExecContext) -> Iterator[Row]:
    residual = (
        compile_predicate(plan.residual, plan.schema)
        if plan.residual is not None
        else None
    )
    index = plan.index
    if index.kind is IndexKind.HASH:
        if not plan.is_equality:
            raise PhysicalError("hash index supports only equality probes")
        rids = index.structure.search(plan.low.value)
        entries: Iterator[Tuple[Any, Any]] = ((plan.low.value, r) for r in rids)
    else:
        low, high, li, hi = _index_bounds(plan)
        entries = index.structure.range_scan(low, high, li, hi)
    heap = plan.table.heap
    for _, rid in entries:
        row = heap.fetch(rid)
        if row is None:
            continue  # deleted since the index entry was made
        ctx.metrics.rows_scanned += 1
        if residual is None or residual(row):
            yield row


def _index_only_scan(plan: PIndexOnlyScan, ctx: ExecContext) -> Iterator[Row]:
    if plan.index.kind is not IndexKind.BTREE:
        raise PhysicalError("index-only scans require a btree index")
    low, high, li, hi = _index_bounds(plan)
    for key, _rid in plan.index.structure.range_scan(low, high, li, hi):
        ctx.metrics.rows_scanned += 1
        yield (key,)


# -- stateless row operators ----------------------------------------------------------


def _filter(plan: PFilter, ctx: ExecContext) -> Iterator[Row]:
    predicate = compile_predicate(plan.predicate, plan.child.schema)
    for row in _counted(plan.child, execute(plan.child, ctx), ctx):
        if predicate(row):
            yield row


def _project(plan: PProject, ctx: ExecContext) -> Iterator[Row]:
    fns = [compile_expr(e, plan.child.schema) for e in plan.exprs]
    for row in _counted(plan.child, execute(plan.child, ctx), ctx):
        yield tuple(fn(row) for fn in fns)


def _narrow(plan: PNarrow, ctx: ExecContext) -> Iterator[Row]:
    positions = plan.positions
    for row in _counted(plan.child, execute(plan.child, ctx), ctx):
        yield tuple(row[i] for i in positions)


def _limit(plan: PLimit, ctx: ExecContext) -> Iterator[Row]:
    if plan.count <= 0:
        return
    emitted = 0
    for row in _counted(plan.child, execute(plan.child, ctx), ctx):
        yield row
        emitted += 1
        if emitted >= plan.count:
            return


def _materialize(plan: PMaterialize, ctx: ExecContext) -> Iterator[Row]:
    cached = getattr(plan, "_cache", None)
    if cached is None:
        cached = list(_counted(plan.child, execute(plan.child, ctx), ctx))
        plan._cache = cached
    return iter(cached)


# -- joins ----------------------------------------------------------------------------


def _nested_loop(plan: PNestedLoopJoin, ctx: ExecContext) -> Iterator[Row]:
    condition = (
        compile_predicate(plan.condition, plan.schema)
        if plan.condition is not None
        else None
    )
    block_rows = ctx.max_rows_in_memory(plan.left.schema, plan.block_pages)
    outer = _counted(plan.left, execute(plan.left, ctx), ctx)
    block: List[Row] = []

    def flush() -> Iterator[Row]:
        if not block:
            return
        # one pass over the inner per outer block
        for inner_row in _counted(plan.right, execute(plan.right, ctx), ctx):
            for outer_row in block:
                ctx.metrics.comparisons += 1
                combined = outer_row + inner_row
                if condition is None or condition(combined):
                    yield combined

    for outer_row in outer:
        block.append(outer_row)
        if len(block) >= block_rows:
            yield from flush()
            block = []
    yield from flush()


def _index_nl(plan: PIndexNLJoin, ctx: ExecContext) -> Iterator[Row]:
    key_fn = compile_expr(plan.outer_key, plan.left.schema)
    residual = (
        compile_predicate(plan.residual, plan.schema)
        if plan.residual is not None
        else None
    )
    index = plan.index
    heap = plan.table.heap
    composite = getattr(index, "is_composite", False)
    if composite:
        from ..index.keys import MAX_KEY, MIN_KEY
    for outer_row in _counted(plan.left, execute(plan.left, ctx), ctx):
        key = key_fn(outer_row)
        if key is None:
            continue
        ctx.metrics.hash_probes += 1
        if composite:
            # probe on the leading key component: all entries whose first
            # component equals the outer key
            rids = [
                rid
                for _, rid in index.structure.range_scan(
                    (key, MIN_KEY), (key, MAX_KEY)
                )
            ]
        else:
            rids = index.structure.search(key)
        for rid in rids:
            inner_row = heap.fetch(rid)
            if inner_row is None:
                continue
            combined = outer_row + inner_row
            if residual is None or residual(combined):
                yield combined


def _merge_join(plan: PSortMergeJoin, ctx: ExecContext) -> Iterator[Row]:
    left_key = compile_expr(plan.left_key, plan.left.schema)
    right_key = compile_expr(plan.right_key, plan.right.schema)
    residual = (
        compile_predicate(plan.residual, plan.schema)
        if plan.residual is not None
        else None
    )
    left = _counted(plan.left, execute(plan.left, ctx), ctx)
    right = _counted(plan.right, execute(plan.right, ctx), ctx)

    lrow = next(left, None)
    rrow = next(right, None)
    while lrow is not None and rrow is not None:
        lk = left_key(lrow)
        rk = right_key(rrow)
        if lk is None:
            lrow = next(left, None)
            continue
        if rk is None:
            rrow = next(right, None)
            continue
        ctx.metrics.comparisons += 1
        c = cmp_values(lk, rk)
        if c < 0:
            lrow = next(left, None)
        elif c > 0:
            rrow = next(right, None)
        else:
            # gather the full right group with this key
            group = [rrow]
            rrow = next(right, None)
            while rrow is not None and right_key(rrow) == lk:
                group.append(rrow)
                rrow = next(right, None)
            while lrow is not None and left_key(lrow) == lk:
                for g in group:
                    combined = lrow + g
                    if residual is None or residual(combined):
                        yield combined
                lrow = next(left, None)


def _hash_join(plan: PHashJoin, ctx: ExecContext) -> Iterator[Row]:
    left_key = compile_expr(plan.left_key, plan.left.schema)
    right_key = compile_expr(plan.right_key, plan.right.schema)
    residual = (
        compile_predicate(plan.residual, plan.schema)
        if plan.residual is not None
        else None
    )
    build_schema = plan.right.schema
    max_build = ctx.max_rows_in_memory(build_schema)

    table: dict = {}
    build_rows: List[Row] = []
    overflow = False
    build_iter = _counted(plan.right, execute(plan.right, ctx), ctx)
    for row in build_iter:
        build_rows.append(row)
        if len(build_rows) > max_build:
            overflow = True
            break

    if not overflow:
        for row in build_rows:
            key = right_key(row)
            if key is None:
                continue
            table.setdefault(key, []).append(row)
        for lrow in _counted(plan.left, execute(plan.left, ctx), ctx):
            key = left_key(lrow)
            if key is None:
                continue
            ctx.metrics.hash_probes += 1
            for rrow in table.get(key, ()):
                combined = lrow + rrow
                if residual is None or residual(combined):
                    yield combined
        return

    # Grace hash join: partition both inputs to temp files, then join each
    # partition pair in memory.
    fanout = max(2, ctx.work_mem_pages - 1)
    right_parts = [ctx.create_temp(build_schema) for _ in range(fanout)]
    for row in build_rows:
        _partition_insert(right_parts, right_key(row), row, fanout)
    for row in build_iter:  # rest of the build side
        _partition_insert(right_parts, right_key(row), row, fanout)
    left_parts = [ctx.create_temp(plan.left.schema) for _ in range(fanout)]
    for row in _counted(plan.left, execute(plan.left, ctx), ctx):
        _partition_insert(left_parts, left_key(row), row, fanout)
    ctx.metrics.spills += 1

    for lpart, rpart in zip(left_parts, right_parts):
        table = {}
        for rrow in rpart.scan_rows():
            key = right_key(rrow)
            table.setdefault(key, []).append(rrow)
        for lrow in lpart.scan_rows():
            key = left_key(lrow)
            ctx.metrics.hash_probes += 1
            for rrow in table.get(key, ()):
                combined = lrow + rrow
                if residual is None or residual(combined):
                    yield combined
        ctx.drop_temp(lpart)
        ctx.drop_temp(rpart)


def _partition_insert(parts, key: Any, row: Row, fanout: int) -> None:
    if key is None:
        return  # NULL keys never join
    parts[_stable_hash(key) % fanout].insert(row)


def _stable_hash(key: Any) -> int:
    if isinstance(key, str):
        h = 2166136261
        for b in key.encode("utf-8"):
            h = ((h ^ b) * 16777619) & 0xFFFFFFFF
        return h
    if isinstance(key, float) and key.is_integer():
        key = int(key)
    return hash(key) & 0xFFFFFFFF


# -- sort --------------------------------------------------------------------------------


def _sort(plan: PSort, ctx: ExecContext) -> Iterator[Row]:
    child_schema = plan.child.schema
    evaluators = [compile_expr(e, child_schema) for e, _ in plan.keys]
    directions = [asc for _, asc in plan.keys]
    key_fn = make_key_fn(evaluators, directions)
    max_rows = ctx.max_rows_in_memory(child_schema)

    runs = []
    buffer: List[Row] = []
    for row in _counted(plan.child, execute(plan.child, ctx), ctx):
        buffer.append(row)
        if len(buffer) >= max_rows:
            buffer.sort(key=key_fn)
            runs.append(_write_run(ctx, child_schema, buffer))
            buffer = []
    if not runs:
        buffer.sort(key=key_fn)
        yield from buffer
        return
    if buffer:
        buffer.sort(key=key_fn)
        runs.append(_write_run(ctx, child_schema, buffer))
    ctx.metrics.spills += 1

    # k-way merge of sorted runs
    streams = [run_file.scan_rows() for run_file in runs]
    heap: List[Tuple[Any, int, Row]] = []
    for i, stream in enumerate(streams):
        first = next(stream, None)
        if first is not None:
            heapq.heappush(heap, (key_fn(first), i, first))
    while heap:
        _, i, row = heapq.heappop(heap)
        yield row
        nxt = next(streams[i], None)
        if nxt is not None:
            heapq.heappush(heap, (key_fn(nxt), i, nxt))
    for run_file in runs:
        ctx.drop_temp(run_file)


def _write_run(ctx: ExecContext, schema, rows: List[Row]):
    temp = ctx.create_temp(schema)
    for row in rows:
        temp.insert(row)
    return temp


# -- aggregation / distinct -----------------------------------------------------------------


def _aggregate(plan: PAggregate, ctx: ExecContext) -> Iterator[Row]:
    child_schema = plan.child.schema
    state = AggregateState(plan.aggs, child_schema)
    key_fn = compile_group_key(plan.group_exprs, child_schema)
    rows = _counted(plan.child, execute(plan.child, ctx), ctx)

    if plan.streaming and plan.group_exprs:
        current_key: Optional[Tuple[Any, ...]] = None
        accs = None
        started = False
        for row in rows:
            key = key_fn(row)
            if not started or key != current_key:
                if started:
                    yield current_key + state.finish(accs)
                current_key = key
                accs = state.new_group()
                started = True
            state.update(accs, row)
        if started:
            yield current_key + state.finish(accs)
        return

    if not plan.group_exprs:
        accs = state.new_group()
        for row in rows:
            state.update(accs, row)
        yield state.finish(accs)
        return

    groups: dict = {}
    for row in rows:
        key = key_fn(row)
        accs = groups.get(key)
        if accs is None:
            accs = state.new_group()
            groups[key] = accs
        state.update(accs, row)
    for key, accs in groups.items():
        yield key + state.finish(accs)


def _distinct(plan: PDistinct, ctx: ExecContext) -> Iterator[Row]:
    seen = set()
    for row in _counted(plan.child, execute(plan.child, ctx), ctx):
        if row not in seen:
            seen.add(row)
            yield row


_DISPATCH: dict = {
    PSeqScan: _seq_scan,
    PIndexScan: _index_scan,
    PIndexOnlyScan: _index_only_scan,
    PFilter: _filter,
    PProject: _project,
    PNarrow: _narrow,
    PLimit: _limit,
    PMaterialize: _materialize,
    PNestedLoopJoin: _nested_loop,
    PIndexNLJoin: _index_nl,
    PSortMergeJoin: _merge_join,
    PHashJoin: _hash_join,
    PSort: _sort,
    PAggregate: _aggregate,
    PDistinct: _distinct,
}
