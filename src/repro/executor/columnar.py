"""Columnar batches: one numpy array per column, with validity masks.

A :class:`ColumnBatch` is the vectorized twin of the row-tuple batch the
operator engine has used since PR 2.  Each column is a pair
``(data, valid)``:

* ``data`` — a numpy array of the column's values.  INT maps to
  ``int64``, FLOAT to ``float64``, BOOL to ``bool_``; TEXT and DATE stay
  ``object`` arrays (Python ``str``/``date`` values).  Columns whose
  values do not fit the fixed-width dtype (e.g. INT beyond 64 bits)
  degrade to ``object`` arrays — slower, but semantics-preserving.
* ``valid`` — an optional boolean mask, ``True`` where the value is
  non-NULL.  ``None`` means the whole column is valid (the common case,
  kept mask-free so kernels skip the mask arithmetic entirely).  Invalid
  lanes of fixed-width arrays hold a zero fill; invalid lanes of
  ``object`` arrays hold ``None``.

Conversion is loss-free in both directions: ``from_rows`` then
``to_rows`` reproduces the original row tuples with native Python values
(``int``, not ``numpy.int64``), which is what keeps the columnar engine
bit-identical to the row engine under the differential matrix.  Any
operator that has not been migrated simply calls :func:`as_row_batch` on
its input and proceeds row-wise — that is the whole incremental-migration
contract.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..types import DataType, Schema

#: one column: (values array, validity mask or None-for-all-valid)
ColumnData = Tuple[np.ndarray, Optional[np.ndarray]]

_FIXED_DTYPES = {
    DataType.INT: np.int64,
    DataType.FLOAT: np.float64,
    DataType.BOOL: np.bool_,
}

#: zero fill stored in invalid lanes of fixed-width arrays
_FILLS = {
    DataType.INT: 0,
    DataType.FLOAT: 0.0,
    DataType.BOOL: False,
}


def column_from_values(
    values: Sequence[Any], dtype: DataType
) -> ColumnData:
    """Build one ``(data, valid)`` column from Python values.

    NULLs (``None``) become ``False`` lanes in the mask; a column with no
    NULLs gets ``valid=None``.
    """
    np_dtype = _FIXED_DTYPES.get(dtype)
    has_null = any(v is None for v in values)
    if np_dtype is None:
        data = np.empty(len(values), dtype=object)
        data[:] = values
        if not has_null:
            return data, None
        valid = np.array([v is not None for v in values], dtype=bool)
        return data, valid
    if not has_null:
        try:
            return np.array(values, dtype=np_dtype), None
        except (OverflowError, TypeError):
            data = np.empty(len(values), dtype=object)
            data[:] = values
            return data, None
    fill = _FILLS[dtype]
    filled = [fill if v is None else v for v in values]
    valid = np.array([v is not None for v in values], dtype=bool)
    try:
        return np.array(filled, dtype=np_dtype), valid
    except (OverflowError, TypeError):
        data = np.empty(len(values), dtype=object)
        data[:] = values
        return data, valid


class ColumnBatch:
    """A batch of rows stored column-wise (see module docstring).

    Supports ``len()`` and truthiness so the operator engine's
    instrumentation (``len(batch)``, ``if batch:``) works unchanged.
    """

    __slots__ = ("schema", "columns", "length")

    def __init__(
        self,
        schema: Schema,
        columns: Sequence[ColumnData],
        length: int,
    ):
        self.schema = schema
        self.columns: List[ColumnData] = list(columns)
        self.length = length

    def __len__(self) -> int:
        return self.length

    def __bool__(self) -> bool:
        return self.length > 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnBatch({self.length} rows x {len(self.columns)} cols)"

    # -- construction --------------------------------------------------------

    @classmethod
    def from_rows(
        cls, schema: Schema, rows: Sequence[Tuple[Any, ...]]
    ) -> "ColumnBatch":
        """Transpose row tuples into columnar arrays (loss-free)."""
        n = len(rows)
        columns: List[ColumnData] = []
        for i, col in enumerate(schema):
            values = [row[i] for row in rows]
            columns.append(column_from_values(values, col.dtype))
        return cls(schema, columns, n)

    # -- conversion ----------------------------------------------------------

    def to_rows(self) -> List[Tuple[Any, ...]]:
        """Transpose back to row tuples with *native Python* values.

        ``ndarray.tolist()`` converts numpy scalars to ``int``/``float``/
        ``bool``; NULL lanes are patched back to ``None`` from the mask.
        """
        if self.length == 0:
            return []
        lists: List[List[Any]] = []
        for data, valid in self.columns:
            values = data.tolist()
            if valid is not None and data.dtype != object:
                for i in np.flatnonzero(~valid).tolist():
                    values[i] = None
            lists.append(values)
        return list(zip(*lists))

    # -- columnar transforms -------------------------------------------------

    def take(self, indices: np.ndarray) -> "ColumnBatch":
        """Gather rows by position (``numpy.take`` per column)."""
        columns: List[ColumnData] = []
        for data, valid in self.columns:
            columns.append(
                (
                    np.take(data, indices),
                    None if valid is None else np.take(valid, indices),
                )
            )
        return ColumnBatch(self.schema, columns, int(len(indices)))

    def filter(self, mask: np.ndarray) -> "ColumnBatch":
        """Keep the rows where *mask* is True."""
        columns: List[ColumnData] = []
        for data, valid in self.columns:
            columns.append(
                (data[mask], None if valid is None else valid[mask])
            )
        return ColumnBatch(self.schema, columns, int(np.count_nonzero(mask)))

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        stop = min(stop, self.length)
        columns: List[ColumnData] = [
            (data[start:stop], None if valid is None else valid[start:stop])
            for data, valid in self.columns
        ]
        return ColumnBatch(self.schema, columns, max(0, stop - start))

    @staticmethod
    def concat(batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Stack batches (same schema) into one."""
        if len(batches) == 1:
            return batches[0]
        schema = batches[0].schema
        columns: List[ColumnData] = []
        for i in range(len(schema)):
            parts = [b.columns[i] for b in batches]
            data = np.concatenate([d for d, _ in parts])
            if all(v is None for _, v in parts):
                valid: Optional[np.ndarray] = None
            else:
                valid = np.concatenate(
                    [
                        np.ones(len(d), dtype=bool) if v is None else v
                        for d, v in parts
                    ]
                )
            columns.append((data, valid))
        return ColumnBatch(schema, columns, sum(b.length for b in batches))


def kernel_values(
    data: np.ndarray, valid: Optional[np.ndarray]
) -> List[Any]:
    """A kernel result as a plain Python list (``None`` at NULL lanes).

    This is the bridge from a vectorized ``(data, valid)`` pair back to
    the row engine's value-column representation — ``tolist()`` converts
    numpy scalars to native ``int``/``float``/``bool``, so downstream
    hashing and accumulation behave bit-for-bit like the row engine.
    """
    values = data.tolist()
    if valid is not None:
        for i in np.flatnonzero(~valid).tolist():
            values[i] = None
    return values


#: what flows through next_batch(): row tuples or a columnar batch
AnyBatch = Union[List[Tuple[Any, ...]], ColumnBatch]


def is_columnar(batch: Any) -> bool:
    return isinstance(batch, ColumnBatch)


def as_row_batch(batch: AnyBatch) -> List[Tuple[Any, ...]]:
    """Row view of a batch: the incremental-migration escape hatch.

    Lists pass through untouched; columnar batches are transposed to row
    tuples with native Python values.
    """
    if isinstance(batch, ColumnBatch):
        return batch.to_rows()
    return batch
