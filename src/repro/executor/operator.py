"""The batched Operator protocol: ``open() / next_batch() / close()``.

Every physical plan node executes as an :class:`Operator` instance that
produces **batches** — plain lists of row tuples, at most
``ctx.batch_size`` rows each for the leaf producers (operators with join
or group fan-out may emit larger batches).  The lifecycle:

* ``open()`` — make the operator ready to produce.  Must be cheap and do
  no I/O; all real work (index probes, hash builds, sort runs) happens
  lazily inside ``next_batch`` so FULL instrumentation attributes it to
  the right node.
* ``next_batch(max_rows=None)`` — return the next batch, or ``None``
  when exhausted.  An empty list is a legal "nothing yet" answer but
  operators avoid it.  ``max_rows`` is a cap below ``batch_size`` that
  consumers like Limit push down so producers don't overshoot — this
  keeps actual row counts identical at every batch size (and identical
  to the old tuple-at-a-time engine).
* ``close()`` — release per-run state.  ``close()`` followed by
  ``open()`` is a **rescan** (how a nested loop re-reads its inner side);
  state that intentionally survives a rescan — Materialize's cache —
  lives on the operator object, which exists for one execution only.

Instrumentation happens here, once, at batch boundaries: the public
``next_batch`` wraps the subclass hook ``_next_batch`` with whatever
``ctx.instrument`` asks for (row/loop counts at ROWS; wall-clock and
attributed buffer/disk I/O deltas at FULL, inclusive of children exactly
like the old per-``next()`` wrappers, but paid per batch instead of per
row).  Subclasses implement ``_open`` / ``_next_batch`` / ``_close`` and
never touch ``plan.actual_*`` themselves.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..obs import InstrumentLevel
from ..physical import PhysicalError, PhysicalPlan
from .columnar import as_row_batch
from .context import ExecContext

Row = Tuple[Any, ...]
Batch = List[Row]

_REGISTRY: Dict[type, Type["Operator"]] = {}


def operator_for(
    plan_type: type,
) -> Callable[[Type["Operator"]], Type["Operator"]]:
    """Class decorator registering an Operator for a plan node type."""

    def register(cls: Type["Operator"]) -> Type["Operator"]:
        _REGISTRY[plan_type] = cls
        return cls

    return register


def build_operator(plan: PhysicalPlan, ctx: ExecContext) -> "Operator":
    """Instantiate the operator tree for *plan* (nothing runs yet)."""
    cls = _REGISTRY.get(type(plan))
    if cls is None:
        raise PhysicalError(f"no operator for {type(plan).__name__}")
    return cls(plan, ctx)


class Operator:
    """Base class for one executing plan node (see module docstring)."""

    def __init__(self, plan: PhysicalPlan, ctx: ExecContext):
        self.plan = plan
        self.ctx = ctx
        self.batch_size = ctx.batch_size
        self._level = ctx.instrument
        self._started = False  # first batch of the current open() pulled?
        if self._level is InstrumentLevel.FULL:
            self._bstats = ctx.pool.stats
            self._dstats = ctx.pool.disk.stats

    # -- public lifecycle (instrumented) ------------------------------------

    def open(self) -> None:
        self._started = False
        self._open()

    def next_batch(self, max_rows: Optional[int] = None) -> Optional[Batch]:
        level = self._level
        if level is InstrumentLevel.OFF:
            return self._next_batch(max_rows)
        plan = self.plan
        if not self._started:
            # loops counts iterations that actually started, mirroring the
            # generator engine where a constructed-but-never-pulled node
            # recorded nothing
            self._started = True
            plan.start_loop()
        if level is InstrumentLevel.ROWS:
            batch = self._next_batch(max_rows)
            plan.accumulate_actuals(rows=len(batch) if batch else 0)
            return batch
        # FULL: wall-clock + attributed I/O around the whole batch.  The
        # interval covers the children's work too (their next_batch only
        # runs inside ours) — inclusive, PostgreSQL-style.
        bstats = self._bstats
        dstats = self._dstats
        h0 = bstats.hits
        r0 = dstats.reads
        w0 = dstats.writes
        t0 = time.perf_counter()
        try:
            batch = self._next_batch(max_rows)
        except BaseException:
            plan.accumulate_actuals(
                rows=0,
                time_ms=(time.perf_counter() - t0) * 1000.0,
                hits=bstats.hits - h0,
                reads=dstats.reads - r0,
                writes=dstats.writes - w0,
            )
            raise
        plan.accumulate_actuals(
            rows=len(batch) if batch else 0,
            time_ms=(time.perf_counter() - t0) * 1000.0,
            hits=bstats.hits - h0,
            reads=dstats.reads - r0,
            writes=dstats.writes - w0,
        )
        return batch

    def close(self) -> None:
        self._close()

    # -- subclass hooks -----------------------------------------------------

    def _open(self) -> None:
        raise NotImplementedError

    def _next_batch(self, max_rows: Optional[int] = None) -> Optional[Batch]:
        raise NotImplementedError

    def _close(self) -> None:
        pass

    def _target(self, max_rows: Optional[int]) -> int:
        """Rows to aim for this call: ``batch_size`` unless capped lower."""
        if max_rows is None or max_rows >= self.batch_size:
            return self.batch_size
        return max_rows

    # -- convenience --------------------------------------------------------

    def rows(self):
        """Iterate the remaining output row by row (internal consumers —
        cursors, spill writers; the engine proper moves batches)."""
        while True:
            batch = self.next_batch()
            if batch is None:
                return
            yield from as_row_batch(batch)


class UnaryOperator(Operator):
    """Operator with exactly one input; owns the child's lifecycle."""

    def __init__(self, plan: PhysicalPlan, ctx: ExecContext):
        super().__init__(plan, ctx)
        self.child = build_operator(plan.children()[0], ctx)

    def _open(self) -> None:
        self.child.open()

    def _close(self) -> None:
        self.child.close()


class BatchCursor:
    """Row-at-a-time view over an operator's batches.

    Merge join (and anything else that needs single-row lookahead) reads
    through one of these; ``next_row`` refills from ``next_batch`` so the
    producer still runs batched.
    """

    __slots__ = ("op", "_batch", "_pos")

    def __init__(self, op: Operator):
        self.op = op
        self._batch: Batch = []
        self._pos = 0

    def next_row(self) -> Optional[Row]:
        while self._pos >= len(self._batch):
            batch = self.op.next_batch()
            if batch is None:
                return None
            self._batch = as_row_batch(batch)
            self._pos = 0
        row = self._batch[self._pos]
        self._pos += 1
        return row
