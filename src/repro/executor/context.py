"""Execution context: work memory, temp-file spill, and run metrics.

``work_mem_pages`` bounds the memory every blocking operator may use
(sort runs, hash-join build side, nested-loop blocks).  Spill goes through
temp heap files on the simulated disk via the shared buffer pool, so
spilling shows up in the I/O counters exactly like any other page traffic.

``batch_size`` is the operator engine's unit of work: how many rows each
``next_batch()`` call targets.  ``batch_size=1`` degenerates to classic
tuple-at-a-time Volcano behaviour; larger batches amortize dispatch and
instrumentation overhead (results are identical at any size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..obs import InstrumentLevel
from ..storage import BufferPool, HeapFile
from ..types import Schema
from .partition import PartitionContext


@dataclass
class ExecMetrics:
    """Executor-side counters (I/O counters live on the disk manager)."""

    rows_scanned: int = 0
    rows_emitted: int = 0
    comparisons: int = 0
    hash_probes: int = 0
    temp_files: int = 0
    spills: int = 0
    parallel_regions: int = 0
    parallel_workers: int = 0
    pages_skipped: int = 0  # heap pages pruned by zone maps, never fixed

    def absorb(self, other: "ExecMetrics") -> None:
        """Fold a worker's counters into this (parent) context's metrics."""
        self.rows_scanned += other.rows_scanned
        self.rows_emitted += other.rows_emitted
        self.comparisons += other.comparisons
        self.hash_probes += other.hash_probes
        self.temp_files += other.temp_files
        self.spills += other.spills
        self.parallel_regions += other.parallel_regions
        self.parallel_workers += other.parallel_workers
        self.pages_skipped += other.pages_skipped


class ExecContext:
    """Shared state for one query execution."""

    #: default rows per batch; large enough to amortize per-batch dispatch
    #: and instrumentation, small enough that a batch of wide tuples stays
    #: cache-friendly
    DEFAULT_BATCH_SIZE = 1024

    def __init__(
        self,
        pool: BufferPool,
        work_mem_pages: int = 64,
        instrument: InstrumentLevel = InstrumentLevel.ROWS,
        batch_size: int = DEFAULT_BATCH_SIZE,
        partition: Optional[PartitionContext] = None,
        activity: Optional[Any] = None,
        columnar: bool = False,
        snapshot: Optional[Any] = None,
    ):
        if work_mem_pages < 3:
            raise ValueError("work memory must be at least 3 pages")
        if batch_size < 1:
            raise ValueError("batch size must be at least 1 row")
        self.pool = pool
        self.work_mem_pages = work_mem_pages
        self.instrument = instrument
        self.batch_size = batch_size
        #: vectorized execution: scans decode pages into ColumnBatch
        #: columns (with zone-map page skipping) and migrated operators
        #: stay columnar; unmigrated ones convert via ``as_row_batch``
        self.columnar = columnar
        #: set only inside a parallel worker: which exchange partition this
        #: execution computes (partition-aware operators consult it)
        self.partition = partition
        #: the in-flight statement's ActivityEntry (``sys_stat_activity``);
        #: the run loop updates its progress fields batch by batch
        self.activity = activity
        #: MVCC read view (a ``repro.wal.Snapshot``); scans consult it to
        #: hide rows committed after the snapshot and resurrect rows the
        #: snapshot should still see.  ``None`` = read the live heap.
        self.snapshot = snapshot
        self.metrics = ExecMetrics()
        self._temp_counter = 0
        self._temp_files: List[HeapFile] = []

    @property
    def work_mem_bytes(self) -> int:
        return self.work_mem_pages * self.pool.disk.page_size

    # -- temp files --------------------------------------------------------------

    def create_temp(self, schema: Schema) -> HeapFile:
        self._temp_counter += 1
        self.metrics.temp_files += 1
        temp = HeapFile(self.pool, schema, f"tmp:{self._temp_counter}")
        self._temp_files.append(temp)
        return temp

    def drop_temp(self, temp: HeapFile) -> None:
        self.pool.discard_file(temp.file_id)
        self.pool.disk.drop_file(temp.file_id)
        if temp in self._temp_files:
            self._temp_files.remove(temp)

    def cleanup(self) -> None:
        """Drop any temp files still alive (safe to call repeatedly)."""
        for temp in list(self._temp_files):
            self.drop_temp(temp)

    # -- memory accounting ----------------------------------------------------------

    def rows_fit_in_memory(self, schema: Schema, num_rows: int) -> bool:
        return num_rows * schema.estimated_row_bytes() <= self.work_mem_bytes

    def max_rows_in_memory(self, schema: Schema, pages: int = 0) -> int:
        """How many rows of *schema* fit in the budget (or in *pages*)."""
        budget = (
            pages * self.pool.disk.page_size if pages else self.work_mem_bytes
        )
        return max(1, budget // schema.estimated_row_bytes())


def spill_rows(
    ctx: ExecContext, schema: Schema, rows: Sequence[Tuple[Any, ...]]
) -> HeapFile:
    """Write *rows* to a fresh temp file (one spill event)."""
    ctx.metrics.spills += 1
    temp = ctx.create_temp(schema)
    for row in rows:
        temp.insert(row)
    return temp


def read_spill(ctx: ExecContext, temp: HeapFile) -> Iterator[Tuple[Any, ...]]:
    """Stream a temp file's rows back (in insertion order)."""
    return temp.scan_rows()
