"""Leaf operators: sequential, index, and index-only scans.

All page access goes through the buffer pool via the heap/index
structures, so I/O counters reflect real behaviour.  Scans are the pure
batch producers: they pull up to ``batch_size`` rows per call and apply
their predicate with one vectorized evaluation per batch.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Iterator, Optional, Tuple

from ..catalog import IndexKind
from ..expr import compile_predicate_batch
from ..expr.vector import compile_predicate_columnar
from ..physical import (
    PIndexOnlyScan,
    PIndexScan,
    PSeqScan,
    PhysicalError,
)
from ..storage import SlottedPage, deserialize_row, page_skipper
from .columnar import ColumnBatch
from .operator import Batch, Operator, operator_for
from .pagedecode import decode_page_columns, decode_pages_columns
from .partition import page_range


class _ScanOp(Operator):
    """Shared per-table accounting for the leaf scan family.

    Scans are the only operators that touch pages on behalf of a base
    table, so attributing buffer traffic to ``table.access`` is exact: a
    hit/miss delta around each batch pull (leaf operators have no
    children whose I/O could leak into the interval).  The counters are
    always on — the cost is a handful of attribute reads per *batch* —
    and feed ``sys_stat_tables``.
    """

    def _pull_counted(self, produce) -> Batch:
        """Run *produce()* and charge its page traffic + rows to the
        scanned table."""
        bstats = self.ctx.pool.stats
        hits0 = bstats.hits
        misses0 = bstats.misses
        batch = produce()
        access = self.plan.table.access
        access.pages_hit += bstats.hits - hits0
        access.pages_read += bstats.misses - misses0
        if batch:
            access.rows_read += len(batch)
        return batch


@operator_for(PSeqScan)
class SeqScanOp(_ScanOp):
    """Heap scan (full, or one page-range partition) with an optional
    pushed-down predicate.

    A scan marked ``parallel`` running inside a worker (the context
    carries a partition) reads only its contiguous page slice; anywhere
    else it degrades to a plain full scan.

    Under a columnar context (``ctx.columnar``) the scan decodes whole
    pages straight into :class:`ColumnBatch` columns (per-record row
    decode only as a NULL fallback), evaluates the pushed-down predicate
    as a vectorized kernel, and — when the table has zone maps — skips
    pages whose (min, max) bounds prove no row can match, before the
    page is ever fixed into the buffer pool.
    """

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.predicate = (
            compile_predicate_batch(plan.predicate, plan.schema)
            if plan.predicate is not None and not ctx.columnar
            else None
        )
        self.predicate_columnar = (
            compile_predicate_columnar(plan.predicate, plan.schema)
            if plan.predicate is not None and ctx.columnar
            else None
        )
        self._rows: Optional[Iterator[Tuple[Any, ...]]] = None
        self._pages: Optional[Iterator[int]] = None
        self._parts: list = []
        self._buffered = 0
        self._skip = None

    def _open(self):
        self._rows = None  # created lazily so the first page read is timed
        self._pages = None
        self._parts = []
        self._buffered = 0
        self._skip = None

    def _page_span(self) -> Tuple[int, int]:
        heap = self.plan.table.heap
        part = self.ctx.partition
        if self.plan.parallel and part is not None:
            return page_range(heap.num_pages, part.worker, part.degree)
        return 0, heap.num_pages

    def _start_scan(self) -> Iterator[Tuple[Any, ...]]:
        self.plan.table.access.seq_scans += 1
        first, last = self._page_span()
        return self.plan.table.heap.scan_rows(first, last)

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self.ctx.columnar:
            return self._next_batch_columnar(max_rows)
        if self._rows is None:
            self._rows = self._start_scan()
        n = self._target(max_rows)
        metrics = self.ctx.metrics
        predicate = self.predicate
        while True:
            batch = self._pull_counted(lambda: list(islice(self._rows, n)))
            if not batch:
                return None
            metrics.rows_scanned += len(batch)
            if predicate is None:
                return batch
            mask = predicate(batch)
            out = [row for row, keep in zip(batch, mask) if keep]
            if out:
                return out
            # whole batch filtered out: pull more instead of going empty

    def _close(self):
        self._rows = None
        self._pages = None
        self._parts = []
        self._buffered = 0

    # -- columnar path ------------------------------------------------------

    def _start_pages(self) -> Iterator[int]:
        plan = self.plan
        plan.table.access.seq_scans += 1
        if plan.table.zones is not None and plan.predicate is not None:
            self._skip = page_skipper(
                plan.predicate, plan.schema, plan.table.zones
            )
        # pages per decode span: enough to fill one target batch, bounded
        # so a span never holds more than a modest slice of the file
        page_size = self.plan.table.heap.pool.disk.page_size
        est_rows = max(1, page_size // plan.schema.estimated_row_bytes())
        self._span = max(1, min(64, -(-self.ctx.batch_size // est_rows)))
        first, last = self._page_span()
        return iter(range(first, last))

    def _decode_next_span(self) -> Optional[ColumnBatch]:
        """The next span of non-skipped pages as one ColumnBatch."""
        plan = self.plan
        heap = plan.table.heap
        schema = plan.schema
        skip = self._skip
        while True:
            raws: list = []
            for page_no in self._pages:
                if skip is not None and skip(page_no):
                    plan.table.access.pages_skipped += 1
                    self.ctx.metrics.pages_skipped += 1
                    continue
                raws.append(heap.page_bytes(page_no))
                if len(raws) >= self._span:
                    break
            if not raws:
                return None
            decoded = decode_pages_columns(schema, raws)
            if decoded is not None:
                columns, count = decoded
                if count == 0:
                    continue
                return ColumnBatch(schema, columns, count)
            # NULLs somewhere in the span: decode page by page, dropping
            # to the per-record row decoder only where needed
            parts: list = []
            for raw in raws:
                single = decode_page_columns(schema, raw)
                if single is None:
                    rows = [
                        deserialize_row(schema, rec)
                        for _, rec in SlottedPage(raw).records()
                    ]
                    if rows:
                        parts.append(ColumnBatch.from_rows(schema, rows))
                else:
                    columns, count = single
                    if count:
                        parts.append(ColumnBatch(schema, columns, count))
            if not parts:
                continue
            if len(parts) == 1:
                return parts[0]
            return ColumnBatch.concat(parts)

    def _next_batch_columnar(self, max_rows=None) -> Optional[ColumnBatch]:
        if self._pages is None:
            self._pages = self._start_pages()
        n = self._target(max_rows)
        metrics = self.ctx.metrics
        predicate = self.predicate_columnar
        # accumulate decoded (and filtered) pages up to the target size,
        # so downstream operators see full-size batches, not page-size
        # slivers; the tail past the target carries over to the next call
        parts = self._parts
        buffered = self._buffered
        while buffered < n:
            batch = self._pull_counted(self._decode_next_span)
            if batch is None:
                break
            metrics.rows_scanned += len(batch)
            if predicate is not None:
                batch = batch.filter(predicate(batch))
                if not batch:
                    continue
            parts.append(batch)
            buffered += len(batch)
        if not parts:
            self._buffered = 0
            return None
        combined = ColumnBatch.concat(parts) if len(parts) > 1 else parts[0]
        if buffered > n:
            self._parts = [combined.slice(n, buffered)]
            self._buffered = buffered - n
            return combined.slice(0, n)
        self._parts = []
        self._buffered = 0
        return combined


def _index_bounds(plan) -> Tuple[Any, Any, bool, bool]:
    low = None if plan.low.unbounded else plan.low.value
    high = None if plan.high.unbounded else plan.high.value
    return low, high, plan.low.inclusive, plan.high.inclusive


@operator_for(PIndexScan)
class IndexScanOp(_ScanOp):
    """B+-tree range scan (or hash equality probe) fetching heap rows."""

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.residual = (
            compile_predicate_batch(plan.residual, plan.schema)
            if plan.residual is not None
            else None
        )
        self._rows: Optional[Iterator[Tuple[Any, ...]]] = None

    def _open(self):
        self._rows = None

    def _start(self) -> Iterator[Tuple[Any, Any]]:
        plan = self.plan
        plan.table.access.index_scans += 1
        index = plan.index
        if index.kind is IndexKind.HASH:
            if not plan.is_equality:
                raise PhysicalError("hash index supports only equality probes")
            rids = index.structure.search(plan.low.value)
            return iter([(plan.low.value, rid) for rid in rids])
        low, high, li, hi = _index_bounds(plan)
        return index.structure.range_scan(low, high, li, hi)

    def _fetched(self) -> Iterator[Tuple[Any, ...]]:
        # interleave index-entry iteration with heap fetches so the page
        # access pattern (and hence the buffer pool's hit/read split) is
        # the same at every batch size
        fetch = self.plan.table.heap.fetch
        for _, rid in self._start():
            row = fetch(rid)
            if row is None:
                continue  # deleted since the index entry was made
            yield row

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self._rows is None:
            self._rows = self._fetched()
        n = self._target(max_rows)
        metrics = self.ctx.metrics
        residual = self.residual
        while True:
            batch = self._pull_counted(lambda: list(islice(self._rows, n)))
            if not batch:
                return None
            metrics.rows_scanned += len(batch)
            if residual is not None:
                mask = residual(batch)
                batch = [row for row, keep in zip(batch, mask) if keep]
            if batch:
                return batch

    def _close(self):
        self._rows = None


@operator_for(PIndexOnlyScan)
class IndexOnlyScanOp(_ScanOp):
    """Answer directly from index entries (key column only, no heap I/O)."""

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        if plan.index.kind is not IndexKind.BTREE:
            raise PhysicalError("index-only scans require a btree index")
        self._entries = None

    def _open(self):
        self._entries = None

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self._entries is None:
            low, high, li, hi = _index_bounds(self.plan)
            self.plan.table.access.index_scans += 1
            self._entries = self.plan.index.structure.range_scan(
                low, high, li, hi
            )
        n = self._target(max_rows)
        batch = self._pull_counted(
            lambda: [(key,) for key, _rid in islice(self._entries, n)]
        )
        if not batch:
            return None
        self.ctx.metrics.rows_scanned += len(batch)
        return batch

    def _close(self):
        self._entries = None
