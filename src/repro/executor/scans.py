"""Leaf operators: sequential, index, and index-only scans.

All page access goes through the buffer pool via the heap/index
structures, so I/O counters reflect real behaviour.  Scans are the pure
batch producers: they pull up to ``batch_size`` rows per call and apply
their predicate with one vectorized evaluation per batch.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Iterator, Optional, Tuple

from ..catalog import IndexKind
from ..expr import compile_predicate_batch
from ..physical import (
    PIndexOnlyScan,
    PIndexScan,
    PSeqScan,
    PhysicalError,
)
from .operator import Batch, Operator, operator_for
from .partition import page_range


class _ScanOp(Operator):
    """Shared per-table accounting for the leaf scan family.

    Scans are the only operators that touch pages on behalf of a base
    table, so attributing buffer traffic to ``table.access`` is exact: a
    hit/miss delta around each batch pull (leaf operators have no
    children whose I/O could leak into the interval).  The counters are
    always on — the cost is a handful of attribute reads per *batch* —
    and feed ``sys_stat_tables``.
    """

    def _pull_counted(self, produce) -> Batch:
        """Run *produce()* and charge its page traffic + rows to the
        scanned table."""
        bstats = self.ctx.pool.stats
        hits0 = bstats.hits
        misses0 = bstats.misses
        batch = produce()
        access = self.plan.table.access
        access.pages_hit += bstats.hits - hits0
        access.pages_read += bstats.misses - misses0
        if batch:
            access.rows_read += len(batch)
        return batch


@operator_for(PSeqScan)
class SeqScanOp(_ScanOp):
    """Heap scan (full, or one page-range partition) with an optional
    pushed-down predicate.

    A scan marked ``parallel`` running inside a worker (the context
    carries a partition) reads only its contiguous page slice; anywhere
    else it degrades to a plain full scan.
    """

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.predicate = (
            compile_predicate_batch(plan.predicate, plan.schema)
            if plan.predicate is not None
            else None
        )
        self._rows: Optional[Iterator[Tuple[Any, ...]]] = None

    def _open(self):
        self._rows = None  # created lazily so the first page read is timed

    def _start_scan(self) -> Iterator[Tuple[Any, ...]]:
        heap = self.plan.table.heap
        self.plan.table.access.seq_scans += 1
        part = self.ctx.partition
        if self.plan.parallel and part is not None:
            first, last = page_range(heap.num_pages, part.worker, part.degree)
            return heap.scan_rows(first, last)
        return heap.scan_rows()

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self._rows is None:
            self._rows = self._start_scan()
        n = self._target(max_rows)
        metrics = self.ctx.metrics
        predicate = self.predicate
        while True:
            batch = self._pull_counted(lambda: list(islice(self._rows, n)))
            if not batch:
                return None
            metrics.rows_scanned += len(batch)
            if predicate is None:
                return batch
            mask = predicate(batch)
            out = [row for row, keep in zip(batch, mask) if keep]
            if out:
                return out
            # whole batch filtered out: pull more instead of going empty

    def _close(self):
        self._rows = None


def _index_bounds(plan) -> Tuple[Any, Any, bool, bool]:
    low = None if plan.low.unbounded else plan.low.value
    high = None if plan.high.unbounded else plan.high.value
    return low, high, plan.low.inclusive, plan.high.inclusive


@operator_for(PIndexScan)
class IndexScanOp(_ScanOp):
    """B+-tree range scan (or hash equality probe) fetching heap rows."""

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.residual = (
            compile_predicate_batch(plan.residual, plan.schema)
            if plan.residual is not None
            else None
        )
        self._rows: Optional[Iterator[Tuple[Any, ...]]] = None

    def _open(self):
        self._rows = None

    def _start(self) -> Iterator[Tuple[Any, Any]]:
        plan = self.plan
        plan.table.access.index_scans += 1
        index = plan.index
        if index.kind is IndexKind.HASH:
            if not plan.is_equality:
                raise PhysicalError("hash index supports only equality probes")
            rids = index.structure.search(plan.low.value)
            return iter([(plan.low.value, rid) for rid in rids])
        low, high, li, hi = _index_bounds(plan)
        return index.structure.range_scan(low, high, li, hi)

    def _fetched(self) -> Iterator[Tuple[Any, ...]]:
        # interleave index-entry iteration with heap fetches so the page
        # access pattern (and hence the buffer pool's hit/read split) is
        # the same at every batch size
        fetch = self.plan.table.heap.fetch
        for _, rid in self._start():
            row = fetch(rid)
            if row is None:
                continue  # deleted since the index entry was made
            yield row

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self._rows is None:
            self._rows = self._fetched()
        n = self._target(max_rows)
        metrics = self.ctx.metrics
        residual = self.residual
        while True:
            batch = self._pull_counted(lambda: list(islice(self._rows, n)))
            if not batch:
                return None
            metrics.rows_scanned += len(batch)
            if residual is not None:
                mask = residual(batch)
                batch = [row for row, keep in zip(batch, mask) if keep]
            if batch:
                return batch

    def _close(self):
        self._rows = None


@operator_for(PIndexOnlyScan)
class IndexOnlyScanOp(_ScanOp):
    """Answer directly from index entries (key column only, no heap I/O)."""

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        if plan.index.kind is not IndexKind.BTREE:
            raise PhysicalError("index-only scans require a btree index")
        self._entries = None

    def _open(self):
        self._entries = None

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self._entries is None:
            low, high, li, hi = _index_bounds(self.plan)
            self.plan.table.access.index_scans += 1
            self._entries = self.plan.index.structure.range_scan(
                low, high, li, hi
            )
        n = self._target(max_rows)
        batch = self._pull_counted(
            lambda: [(key,) for key, _rid in islice(self._entries, n)]
        )
        if not batch:
            return None
        self.ctx.metrics.rows_scanned += len(batch)
        return batch

    def _close(self):
        self._entries = None
