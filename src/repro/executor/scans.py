"""Leaf operators: sequential, index, and index-only scans.

All page access goes through the buffer pool via the heap/index
structures, so I/O counters reflect real behaviour.  Scans are the pure
batch producers: they pull up to ``batch_size`` rows per call and apply
their predicate with one vectorized evaluation per batch.

Snapshot visibility (MVCC) is applied here, at the leaves.  When the
context carries a :class:`repro.wal.Snapshot`, every scan first asks the
version store for the table's *overlay* — the per-rid corrections this
snapshot needs on top of the live heap (``None`` in the overwhelmingly
common case where the heap already matches the snapshot, which keeps the
fast paths byte-identical to non-MVCC execution).  With an overlay:

* heap rows at overlaid rids are substituted (older image) or hidden
  (the row did not exist yet);
* rows deleted after the snapshot began are resurrected as *ghosts*;
* index scans suppress entries for overlaid rids and merge the visible
  images back **in key order** (via ``key_lt``), because the optimizer
  exploits index output order (merge joins, ORDER BY elimination);
* the columnar path falls back to row-at-a-time decoding — zone maps
  are rebuilt from the live heap, so page skipping is unsound under an
  overlay and is disabled with it.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from ..catalog import IndexKind
from ..expr import compile_predicate_batch
from ..expr.vector import compile_predicate_columnar
from ..index.keys import key_lt
from ..physical import (
    PIndexOnlyScan,
    PIndexScan,
    PSeqScan,
    PhysicalError,
)
from ..storage import SlottedPage, deserialize_row, page_skipper
from .columnar import ColumnBatch
from .operator import Batch, Operator, operator_for
from .pagedecode import decode_page_columns, decode_pages_columns
from .partition import page_range

RID = Tuple[int, int]
Overlay = Tuple[Dict[RID, Optional[Tuple]], Dict[RID, Tuple]]


def table_overlay(ctx, info) -> Optional[Overlay]:
    """The snapshot's (replace, ghosts) correction for *info*'s table, or
    ``None`` when the live heap is already what the snapshot sees."""
    snapshot = getattr(ctx, "snapshot", None)
    if snapshot is None:
        return None
    return snapshot.scan_overlay(info)


class _KeyOrder:
    """Sort adapter over the index key total order (NULLs first)."""

    __slots__ = ("key",)

    def __init__(self, key: Any):
        self.key = key

    def __lt__(self, other: "_KeyOrder") -> bool:
        return key_lt(self.key, other.key)


def _key_in_bounds(plan, key: Any) -> bool:
    """Would the index scan described by *plan* have emitted *key*?"""
    if plan.index.kind is IndexKind.HASH:
        return key is not None and key == plan.low.value
    low, high, li, hi = _index_bounds(plan)
    if key is None:
        # bounded btree scans never return NULL keys (SQL comparison
        # semantics); fully unbounded scans include them
        return low is None and high is None
    if low is not None:
        if li:
            if key_lt(key, low):
                return False
        elif not key_lt(low, key):
            return False
    if high is not None:
        if hi:
            if key_lt(high, key):
                return False
        elif not key_lt(key, high):
            return False
    return True


def index_overlay(plan, overlay: Overlay) -> Tuple[Set[RID], List[Tuple[Any, Tuple]]]:
    """Translate a table overlay into index-scan terms.

    Returns ``(skip, injected)``: rids whose index entries must be
    suppressed (their heap row is not what this snapshot sees), and the
    key-sorted ``(key, row)`` list of visible images whose key falls
    inside the scan bounds, ready to merge into the entry stream.
    """
    replace, ghosts = overlay
    skip = set(replace) | set(ghosts)
    info = plan.table
    positions = [info.schema.index_of(c) for c in plan.index.columns]

    def key_of(row: Tuple) -> Any:
        if len(positions) == 1:
            return row[positions[0]]
        return tuple(row[p] for p in positions)

    injected: List[Tuple[Any, Tuple]] = []
    for row in replace.values():
        if row is not None:
            key = key_of(row)
            if _key_in_bounds(plan, key):
                injected.append((key, row))
    for row in ghosts.values():
        key = key_of(row)
        if _key_in_bounds(plan, key):
            injected.append((key, row))
    injected.sort(key=lambda kr: _KeyOrder(kr[0]))
    return skip, injected


class _ScanOp(Operator):
    """Shared per-table accounting for the leaf scan family.

    Scans are the only operators that touch pages on behalf of a base
    table, so attributing buffer traffic to ``table.access`` is exact: a
    hit/miss delta around each batch pull (leaf operators have no
    children whose I/O could leak into the interval).  The counters are
    always on — the cost is a handful of attribute reads per *batch* —
    and feed ``sys_stat_tables``.
    """

    def _pull_counted(self, produce) -> Batch:
        """Run *produce()* and charge its page traffic + rows to the
        scanned table."""
        bstats = self.ctx.pool.stats
        hits0 = bstats.hits
        misses0 = bstats.misses
        batch = produce()
        access = self.plan.table.access
        access.pages_hit += bstats.hits - hits0
        access.pages_read += bstats.misses - misses0
        if batch:
            access.rows_read += len(batch)
        return batch


@operator_for(PSeqScan)
class SeqScanOp(_ScanOp):
    """Heap scan (full, or one page-range partition) with an optional
    pushed-down predicate.

    A scan marked ``parallel`` running inside a worker (the context
    carries a partition) reads only its contiguous page slice; anywhere
    else it degrades to a plain full scan.

    Under a columnar context (``ctx.columnar``) the scan decodes whole
    pages straight into :class:`ColumnBatch` columns (per-record row
    decode only as a NULL fallback), evaluates the pushed-down predicate
    as a vectorized kernel, and — when the table has zone maps — skips
    pages whose (min, max) bounds prove no row can match, before the
    page is ever fixed into the buffer pool.
    """

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.predicate = (
            compile_predicate_batch(plan.predicate, plan.schema)
            if plan.predicate is not None and not ctx.columnar
            else None
        )
        self.predicate_columnar = (
            compile_predicate_columnar(plan.predicate, plan.schema)
            if plan.predicate is not None and ctx.columnar
            else None
        )
        self._rows: Optional[Iterator[Tuple[Any, ...]]] = None
        self._pages: Optional[Iterator[int]] = None
        self._parts: list = []
        self._buffered = 0
        self._skip = None

    def _open(self):
        self._rows = None  # created lazily so the first page read is timed
        self._pages = None
        self._parts = []
        self._buffered = 0
        self._skip = None

    def _page_span(self) -> Tuple[int, int]:
        heap = self.plan.table.heap
        part = self.ctx.partition
        if self.plan.parallel and part is not None:
            return page_range(heap.num_pages, part.worker, part.degree)
        return 0, heap.num_pages

    def _visible_rows(
        self, overlay: Overlay, first: int, last: int
    ) -> Iterator[Tuple[Any, ...]]:
        """Heap scan with snapshot corrections applied in rid order;
        ghosts (rows deleted after the snapshot) come after their page
        range — a seq scan promises no ordering, so appending is fine."""
        replace, ghosts = overlay
        for rid, row in self.plan.table.heap.scan(first, last):
            if rid in replace:
                older = replace[rid]
                if older is not None:
                    yield older
                continue
            yield row
        for rid in sorted(g for g in ghosts if first <= g[0] < last):
            yield ghosts[rid]

    def _start_scan(self) -> Iterator[Tuple[Any, ...]]:
        self.plan.table.access.seq_scans += 1
        first, last = self._page_span()
        overlay = table_overlay(self.ctx, self.plan.table)
        if overlay is not None:
            return self._visible_rows(overlay, first, last)
        return self.plan.table.heap.scan_rows(first, last)

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self.ctx.columnar:
            return self._next_batch_columnar(max_rows)
        if self._rows is None:
            self._rows = self._start_scan()
        n = self._target(max_rows)
        metrics = self.ctx.metrics
        predicate = self.predicate
        while True:
            batch = self._pull_counted(lambda: list(islice(self._rows, n)))
            if not batch:
                return None
            metrics.rows_scanned += len(batch)
            if predicate is None:
                return batch
            mask = predicate(batch)
            out = [row for row, keep in zip(batch, mask) if keep]
            if out:
                return out
            # whole batch filtered out: pull more instead of going empty

    def _close(self):
        self._rows = None
        self._pages = None
        self._parts = []
        self._buffered = 0

    # -- columnar path ------------------------------------------------------

    def _start_pages(self) -> Iterator[int]:
        plan = self.plan
        plan.table.access.seq_scans += 1
        if plan.table.zones is not None and plan.predicate is not None:
            self._skip = page_skipper(
                plan.predicate, plan.schema, plan.table.zones
            )
        # pages per decode span: enough to fill one target batch, bounded
        # so a span never holds more than a modest slice of the file
        page_size = self.plan.table.heap.pool.disk.page_size
        est_rows = max(1, page_size // plan.schema.estimated_row_bytes())
        self._span = max(1, min(64, -(-self.ctx.batch_size // est_rows)))
        first, last = self._page_span()
        return iter(range(first, last))

    def _decode_next_span(self) -> Optional[ColumnBatch]:
        """The next span of non-skipped pages as one ColumnBatch."""
        plan = self.plan
        heap = plan.table.heap
        schema = plan.schema
        skip = self._skip
        while True:
            raws: list = []
            for page_no in self._pages:
                if skip is not None and skip(page_no):
                    plan.table.access.pages_skipped += 1
                    self.ctx.metrics.pages_skipped += 1
                    continue
                raws.append(heap.page_bytes(page_no))
                if len(raws) >= self._span:
                    break
            if not raws:
                return None
            decoded = decode_pages_columns(schema, raws)
            if decoded is not None:
                columns, count = decoded
                if count == 0:
                    continue
                return ColumnBatch(schema, columns, count)
            # NULLs somewhere in the span: decode page by page, dropping
            # to the per-record row decoder only where needed
            parts: list = []
            for raw in raws:
                single = decode_page_columns(schema, raw)
                if single is None:
                    rows = [
                        deserialize_row(schema, rec)
                        for _, rec in SlottedPage(raw).records()
                    ]
                    if rows:
                        parts.append(ColumnBatch.from_rows(schema, rows))
                else:
                    columns, count = single
                    if count:
                        parts.append(ColumnBatch(schema, columns, count))
            if not parts:
                continue
            if len(parts) == 1:
                return parts[0]
            return ColumnBatch.concat(parts)

    def _next_batch_columnar_rows(self, max_rows=None) -> Optional[ColumnBatch]:
        """Columnar scan under a snapshot overlay: decode row-at-a-time
        (zone-map skipping would consult live-heap bounds that the
        snapshot's older images may violate) and columnarize per batch."""
        n = self._target(max_rows)
        predicate = self.predicate_columnar
        while True:
            rows = self._pull_counted(lambda: list(islice(self._rows, n)))
            if not rows:
                return None
            self.ctx.metrics.rows_scanned += len(rows)
            batch = ColumnBatch.from_rows(self.plan.schema, rows)
            if predicate is not None:
                batch = batch.filter(predicate(batch))
                if not batch:
                    continue
            return batch

    def _next_batch_columnar(self, max_rows=None) -> Optional[ColumnBatch]:
        if self._rows is not None:
            return self._next_batch_columnar_rows(max_rows)
        if self._pages is None:
            overlay = table_overlay(self.ctx, self.plan.table)
            if overlay is not None:
                self.plan.table.access.seq_scans += 1
                first, last = self._page_span()
                self._rows = self._visible_rows(overlay, first, last)
                return self._next_batch_columnar_rows(max_rows)
            self._pages = self._start_pages()
        n = self._target(max_rows)
        metrics = self.ctx.metrics
        predicate = self.predicate_columnar
        # accumulate decoded (and filtered) pages up to the target size,
        # so downstream operators see full-size batches, not page-size
        # slivers; the tail past the target carries over to the next call
        parts = self._parts
        buffered = self._buffered
        while buffered < n:
            batch = self._pull_counted(self._decode_next_span)
            if batch is None:
                break
            metrics.rows_scanned += len(batch)
            if predicate is not None:
                batch = batch.filter(predicate(batch))
                if not batch:
                    continue
            parts.append(batch)
            buffered += len(batch)
        if not parts:
            self._buffered = 0
            return None
        combined = ColumnBatch.concat(parts) if len(parts) > 1 else parts[0]
        if buffered > n:
            self._parts = [combined.slice(n, buffered)]
            self._buffered = buffered - n
            return combined.slice(0, n)
        self._parts = []
        self._buffered = 0
        return combined


def _index_bounds(plan) -> Tuple[Any, Any, bool, bool]:
    low = None if plan.low.unbounded else plan.low.value
    high = None if plan.high.unbounded else plan.high.value
    return low, high, plan.low.inclusive, plan.high.inclusive


@operator_for(PIndexScan)
class IndexScanOp(_ScanOp):
    """B+-tree range scan (or hash equality probe) fetching heap rows."""

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.residual = (
            compile_predicate_batch(plan.residual, plan.schema)
            if plan.residual is not None
            else None
        )
        self._rows: Optional[Iterator[Tuple[Any, ...]]] = None

    def _open(self):
        self._rows = None

    def _start(self) -> Iterator[Tuple[Any, Any]]:
        plan = self.plan
        plan.table.access.index_scans += 1
        index = plan.index
        if index.kind is IndexKind.HASH:
            if not plan.is_equality:
                raise PhysicalError("hash index supports only equality probes")
            rids = index.structure.search(plan.low.value)
            return iter([(plan.low.value, rid) for rid in rids])
        low, high, li, hi = _index_bounds(plan)
        return index.structure.range_scan(low, high, li, hi)

    def _fetched(self) -> Iterator[Tuple[Any, ...]]:
        # interleave index-entry iteration with heap fetches so the page
        # access pattern (and hence the buffer pool's hit/read split) is
        # the same at every batch size
        fetch = self.plan.table.heap.fetch
        overlay = table_overlay(self.ctx, self.plan.table)
        if overlay is None:
            for _, rid in self._start():
                row = fetch(rid)
                if row is None:
                    continue  # deleted since the index entry was made
                yield row
            return
        # snapshot overlay: suppress entries whose heap row is not what
        # this snapshot sees, and merge the visible images back in key
        # order (downstream operators may rely on the index sort order)
        skip, injected = index_overlay(self.plan, overlay)
        i, n = 0, len(injected)
        for key, rid in self._start():
            while i < n and not key_lt(key, injected[i][0]):
                yield injected[i][1]
                i += 1
            if rid in skip:
                continue
            row = fetch(rid)
            if row is None:
                continue
            yield row
        while i < n:
            yield injected[i][1]
            i += 1

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self._rows is None:
            self._rows = self._fetched()
        n = self._target(max_rows)
        metrics = self.ctx.metrics
        residual = self.residual
        while True:
            batch = self._pull_counted(lambda: list(islice(self._rows, n)))
            if not batch:
                return None
            metrics.rows_scanned += len(batch)
            if residual is not None:
                mask = residual(batch)
                batch = [row for row, keep in zip(batch, mask) if keep]
            if batch:
                return batch

    def _close(self):
        self._rows = None


@operator_for(PIndexOnlyScan)
class IndexOnlyScanOp(_ScanOp):
    """Answer directly from index entries (key column only, no heap I/O)."""

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        if plan.index.kind is not IndexKind.BTREE:
            raise PhysicalError("index-only scans require a btree index")
        self._entries = None

    def _open(self):
        self._entries = None

    def _keys(self) -> Iterator[Any]:
        low, high, li, hi = _index_bounds(self.plan)
        self.plan.table.access.index_scans += 1
        entries = self.plan.index.structure.range_scan(low, high, li, hi)
        overlay = table_overlay(self.ctx, self.plan.table)
        if overlay is None:
            for key, _rid in entries:
                yield key
            return
        skip, injected = index_overlay(self.plan, overlay)
        i, n = 0, len(injected)
        for key, rid in entries:
            while i < n and not key_lt(key, injected[i][0]):
                yield injected[i][0]
                i += 1
            if rid in skip:
                continue
            yield key
        while i < n:
            yield injected[i][0]
            i += 1

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self._entries is None:
            self._entries = self._keys()
        n = self._target(max_rows)
        batch = self._pull_counted(
            lambda: [(key,) for key in islice(self._entries, n)]
        )
        if not batch:
            return None
        self.ctx.metrics.rows_scanned += len(batch)
        return batch

    def _close(self):
        self._entries = None
