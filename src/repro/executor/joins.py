"""Join operators: block nested-loop, index nested-loop, sort-merge, hash.

The nested-loop inner side is rescanned per outer block through the
operator lifecycle — ``close()`` then ``open()`` — instead of rebuilding
a generator tree, so an inner Materialize keeps its cache across blocks.
The hash join's Grace spill path (temp-file partitioning through the
buffer pool) is unchanged from the generator engine.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from ..expr import (
    ExprError,
    compile_expr,
    compile_expr_batch,
    compile_predicate_batch,
)
from ..expr.vector import compile_expr_columnar, compile_predicate_columnar
from ..physical import (
    PHashJoin,
    PIndexNLJoin,
    PNestedLoopJoin,
    PSortMergeJoin,
)
from .columnar import ColumnBatch, as_row_batch, is_columnar, kernel_values
from .operator import (
    Batch,
    BatchCursor,
    Operator,
    Row,
    build_operator,
    operator_for,
)
from .partition import partition_hash
from .sortutil import cmp_values


class _BinaryJoinOp(Operator):
    """Shared plumbing: two child operators plus a residual predicate."""

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.left = build_operator(plan.left, ctx)
        self.right = build_operator(plan.right, ctx)
        self._gen: Optional[Iterator[Row]] = None

    def _open(self):
        self.left.open()
        self.right.open()
        self._gen = None

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self._gen is None:
            self._gen = self._join_rows()
        batch = list(islice(self._gen, self._target(max_rows)))
        return batch or None

    def _join_rows(self) -> Iterator[Row]:
        raise NotImplementedError

    def _close(self):
        self._gen = None
        self.left.close()
        self.right.close()


@operator_for(PNestedLoopJoin)
class NestedLoopJoinOp(_BinaryJoinOp):
    """Block nested-loop: outer read once in blocks sized to the work
    memory, inner rescanned (``close()``+``open()``) per block."""

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.condition = (
            compile_predicate_batch(plan.condition, plan.schema)
            if plan.condition is not None
            else None
        )
        self._inner_open = False

    def _open(self):
        # the inner side opens lazily, once per non-empty outer block
        self.left.open()
        self._inner_open = False
        self._gen = None

    def _blocks(self) -> Iterator[List[Row]]:
        """Outer blocks of exactly ``block_rows`` rows (last may be short),
        regardless of the producer's batch size."""
        plan = self.plan
        block_rows = self.ctx.max_rows_in_memory(
            plan.left.schema, plan.block_pages
        )
        block: List[Row] = []
        while True:
            batch = self.left.next_batch()
            if batch is None:
                break
            batch = as_row_batch(batch)
            i = 0
            while i < len(batch):
                take = min(block_rows - len(block), len(batch) - i)
                block.extend(batch[i : i + take])
                i += take
                if len(block) >= block_rows:
                    yield block
                    block = []
        if block:
            yield block

    def _join_rows(self) -> Iterator[Row]:
        condition = self.condition
        metrics = self.ctx.metrics
        inner = self.right
        for block in self._blocks():
            # one rescan of the inner per outer block
            if self._inner_open:
                inner.close()
            inner.open()
            self._inner_open = True
            while True:
                inner_batch = inner.next_batch()
                if inner_batch is None:
                    break
                for inner_row in as_row_batch(inner_batch):
                    metrics.comparisons += len(block)
                    combined = [outer + inner_row for outer in block]
                    if condition is None:
                        yield from combined
                    else:
                        mask = condition(combined)
                        for row, keep in zip(combined, mask):
                            if keep:
                                yield row

    def _close(self):
        self._gen = None
        self.left.close()
        if self._inner_open:
            self.right.close()
            self._inner_open = False


@operator_for(PIndexNLJoin)
class IndexNLJoinOp(Operator):
    """For each outer row, probe an index on the inner table."""

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.left = build_operator(plan.left, ctx)
        self.key_fn = compile_expr_batch(plan.outer_key, plan.left.schema)
        self.residual = (
            compile_predicate_batch(plan.residual, plan.schema)
            if plan.residual is not None
            else None
        )
        self._gen: Optional[Iterator[Row]] = None

    def _open(self):
        self.left.open()
        self._gen = None

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if self._gen is None:
            self._gen = self._join_rows()
        batch = list(islice(self._gen, self._target(max_rows)))
        return batch or None

    def _join_rows(self) -> Iterator[Row]:
        plan = self.plan
        index = plan.index
        heap_fetch = plan.table.heap.fetch
        metrics = self.ctx.metrics
        composite = getattr(index, "is_composite", False)
        if composite:
            from ..index.keys import MAX_KEY, MIN_KEY
        # snapshot overlay on the probed (inner) table: suppress index
        # entries whose heap row is not what the snapshot sees, and probe
        # the visible images by their leading key component instead
        skip, extra = self._inner_overlay(composite)
        while True:
            outer_batch = self.left.next_batch()
            if outer_batch is None:
                return
            outer_batch = as_row_batch(outer_batch)
            out: List[Row] = []
            for outer_row, key in zip(outer_batch, self.key_fn(outer_batch)):
                if key is None:
                    continue
                metrics.hash_probes += 1
                if composite:
                    # probe on the leading key component: all entries whose
                    # first component equals the outer key
                    rids = [
                        rid
                        for _, rid in index.structure.range_scan(
                            (key, MIN_KEY), (key, MAX_KEY)
                        )
                    ]
                else:
                    rids = index.structure.search(key)
                for rid in rids:
                    if skip is not None and rid in skip:
                        continue
                    inner_row = heap_fetch(rid)
                    if inner_row is None:
                        continue
                    out.append(outer_row + inner_row)
                if extra is not None:
                    for inner_row in extra.get(key, ()):
                        out.append(outer_row + inner_row)
            if self.residual is not None and out:
                mask = self.residual(out)
                out = [row for row, keep in zip(out, mask) if keep]
            yield from out

    def _inner_overlay(self, composite: bool):
        """``(skip_rids, probe_key -> visible rows)`` under a snapshot,
        or ``(None, None)`` when the live heap is already correct."""
        from .scans import table_overlay

        plan = self.plan
        overlay = table_overlay(self.ctx, plan.table)
        if overlay is None:
            return None, None
        replace, ghosts = overlay
        skip = set(replace) | set(ghosts)
        schema = plan.table.schema
        lead = schema.index_of(plan.index.columns[0])
        extra: dict = {}
        rows = [r for r in replace.values() if r is not None]
        rows.extend(ghosts.values())
        for row in rows:
            key = row[lead]
            if key is None:
                continue  # probes skip NULL keys, matching the index
            extra.setdefault(key, []).append(row)
        return skip, extra

    def _close(self):
        self._gen = None
        self.left.close()


@operator_for(PSortMergeJoin)
class SortMergeJoinOp(_BinaryJoinOp):
    """Merge join on equality keys over pre-sorted inputs."""

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.left_key = compile_expr(plan.left_key, plan.left.schema)
        self.right_key = compile_expr(plan.right_key, plan.right.schema)
        self.residual = (
            compile_predicate_batch(plan.residual, plan.schema)
            if plan.residual is not None
            else None
        )

    def _join_rows(self) -> Iterator[Row]:
        left_key = self.left_key
        right_key = self.right_key
        metrics = self.ctx.metrics
        left = BatchCursor(self.left)
        right = BatchCursor(self.right)

        lrow = left.next_row()
        rrow = right.next_row()
        while lrow is not None and rrow is not None:
            lk = left_key(lrow)
            rk = right_key(rrow)
            if lk is None:
                lrow = left.next_row()
                continue
            if rk is None:
                rrow = right.next_row()
                continue
            metrics.comparisons += 1
            c = cmp_values(lk, rk)
            if c < 0:
                lrow = left.next_row()
            elif c > 0:
                rrow = right.next_row()
            else:
                # gather the full right group with this key
                group = [rrow]
                rrow = right.next_row()
                while rrow is not None and right_key(rrow) == lk:
                    group.append(rrow)
                    rrow = right.next_row()
                while lrow is not None and left_key(lrow) == lk:
                    combined = [lrow + g for g in group]
                    if self.residual is None:
                        yield from combined
                    else:
                        mask = self.residual(combined)
                        for row, keep in zip(combined, mask):
                            if keep:
                                yield row
                    lrow = left.next_row()


@operator_for(PHashJoin)
class HashJoinOp(_BinaryJoinOp):
    """Hash join building on the right input; Grace-partitions through
    temp files when the build side exceeds work memory.

    Under a columnar context the in-memory path stays columnar end to
    end: the build side is concatenated into one :class:`ColumnBatch`,
    keys come from vectorized kernels, each probe batch produces matched
    ``(probe, build)`` position lists, and the output batch is two
    ``numpy.take`` gathers — no row tuples are ever materialized.  The
    Grace spill path (and any expression shape without a kernel) falls
    back to the row engine, emitting row batches downstream operators
    accept via ``as_row_batch``.
    """

    def __init__(self, plan, ctx):
        super().__init__(plan, ctx)
        self.left_key = compile_expr_batch(plan.left_key, plan.left.schema)
        self.right_key = compile_expr_batch(plan.right_key, plan.right.schema)
        self.residual = (
            compile_predicate_batch(plan.residual, plan.schema)
            if plan.residual is not None
            else None
        )
        self._columnar = False
        self._pending: Optional[ColumnBatch] = None
        self._col_gen: Optional[Iterator[ColumnBatch]] = None
        if ctx.columnar:
            try:
                self.left_key_col = compile_expr_columnar(
                    plan.left_key, plan.left.schema
                )
                self.right_key_col = compile_expr_columnar(
                    plan.right_key, plan.right.schema
                )
                self.residual_col = (
                    compile_predicate_columnar(plan.residual, plan.schema)
                    if plan.residual is not None
                    else None
                )
                self._columnar = True
            except ExprError:
                pass  # no kernel for the keys/residual: row path

    def _open(self):
        super()._open()
        self._pending = None
        self._col_gen: Optional[Iterator[ColumnBatch]] = None

    def _next_batch(self, max_rows=None) -> Optional[Batch]:
        if not self._columnar:
            return super()._next_batch(max_rows)
        n = self._target(max_rows)
        while True:
            pending = self._pending
            if pending is not None:
                if len(pending) > n:
                    self._pending = pending.slice(n, len(pending))
                    return pending.slice(0, n)
                self._pending = None
                return pending
            if self._col_gen is None:
                self._col_gen = self._join_columnar()
            batch = next(self._col_gen, None)
            if batch is None:
                return None
            self._pending = batch

    def _close(self):
        self._pending = None
        self._col_gen = None
        super()._close()

    # -- columnar path ------------------------------------------------------

    def _join_columnar(self) -> Iterator[ColumnBatch]:
        plan = self.plan
        ctx = self.ctx
        build_schema = plan.right.schema
        max_build = ctx.max_rows_in_memory(build_schema)

        built: List[ColumnBatch] = []
        total = 0
        overflow = False
        while True:
            batch = self.right.next_batch()
            if batch is None:
                break
            if not is_columnar(batch):
                batch = ColumnBatch.from_rows(build_schema, batch)
            built.append(batch)
            total += len(batch)
            if total > max_build:
                overflow = True
                break

        if overflow:
            # Grace stays row-wise; re-batch its stream so the caller's
            # pending-buffer protocol sees ColumnBatches throughout
            build_rows = [r for b in built for r in b.to_rows()]
            gen = self._grace(build_rows)
            while True:
                chunk = list(islice(gen, ctx.batch_size))
                if not chunk:
                    return
                yield ColumnBatch.from_rows(plan.schema, chunk)

        build = (
            ColumnBatch.concat(built)
            if built
            else ColumnBatch.from_rows(build_schema, [])
        )
        bkeys, bvalid = self.right_key_col(build)
        # Sorted-key probe: non-NULL (and non-NaN — NaN never equals
        # anything) build positions ordered by key, stably, so equal-key
        # runs stay in insertion order exactly like dict buckets.
        sorted_keys = sorted_pos = None
        if bkeys.dtype != object:
            keep = (
                np.ones(len(build), dtype=bool)
                if bvalid is None
                else bvalid.copy()
            )
            if bkeys.dtype.kind == "f":
                keep &= ~np.isnan(bkeys)
            pos = np.flatnonzero(keep)
            order = np.argsort(bkeys[pos], kind="stable")
            sorted_pos = pos[order]
            sorted_keys = bkeys[sorted_pos]
        positions: Optional[Dict[Any, List[int]]] = None  # dict fallback

        metrics = self.ctx.metrics
        out_schema = plan.schema
        while True:
            probe = self.left.next_batch()
            if probe is None:
                return
            if not is_columnar(probe):
                probe = ColumnBatch.from_rows(plan.left.schema, probe)
            pkeys, pvalid = self.left_key_col(probe)
            n = len(probe)
            if sorted_keys is not None and pkeys.dtype == sorted_keys.dtype:
                # the row engine probes once per non-None key (NaN is a
                # probe that finds nothing)
                metrics.hash_probes += (
                    n if pvalid is None else int(np.count_nonzero(pvalid))
                )
                lo = np.searchsorted(sorted_keys, pkeys, side="left")
                hi = np.searchsorted(sorted_keys, pkeys, side="right")
                counts = hi - lo
                if pvalid is not None:
                    counts[~pvalid] = 0
                if pkeys.dtype.kind == "f":
                    counts[np.isnan(pkeys)] = 0
                total = int(counts.sum())
                if total == 0:
                    continue
                probe_take = np.repeat(np.arange(n, dtype=np.intp), counts)
                span = np.arange(total, dtype=np.intp) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                build_take = sorted_pos[np.repeat(lo, counts) + span]
            else:
                if positions is None:
                    positions = {}
                    for j, key in enumerate(
                        kernel_values(bkeys, bvalid)
                    ):
                        if key is None:
                            continue
                        positions.setdefault(key, []).append(j)
                probe_idx: List[int] = []
                build_idx: List[int] = []
                for i, key in enumerate(kernel_values(pkeys, pvalid)):
                    if key is None:
                        continue
                    metrics.hash_probes += 1
                    for j in positions.get(key, ()):
                        probe_idx.append(i)
                        build_idx.append(j)
                if not probe_idx:
                    continue
                probe_take = np.asarray(probe_idx, dtype=np.intp)
                build_take = np.asarray(build_idx, dtype=np.intp)
            left_out = probe.take(probe_take)
            right_out = build.take(build_take)
            out = ColumnBatch(
                out_schema,
                left_out.columns + right_out.columns,
                len(probe_take),
            )
            if self.residual_col is not None:
                out = out.filter(self.residual_col(out))
                if not out:
                    continue
            yield out

    # -- row path -----------------------------------------------------------

    def _join_rows(self) -> Iterator[Row]:
        plan = self.plan
        ctx = self.ctx
        build_schema = plan.right.schema
        max_build = ctx.max_rows_in_memory(build_schema)

        build_rows: List[Row] = []
        overflow = False
        while True:
            batch = self.right.next_batch()
            if batch is None:
                break
            build_rows.extend(as_row_batch(batch))
            if len(build_rows) > max_build:
                overflow = True
                break

        if not overflow:
            yield from self._in_memory(build_rows)
        else:
            yield from self._grace(build_rows)

    def _in_memory(self, build_rows: List[Row]) -> Iterator[Row]:
        metrics = self.ctx.metrics
        table: dict = {}
        if build_rows:
            for row, key in zip(build_rows, self.right_key(build_rows)):
                if key is None:
                    continue
                table.setdefault(key, []).append(row)
        while True:
            probe = self.left.next_batch()
            if probe is None:
                return
            probe = as_row_batch(probe)
            out: List[Row] = []
            for lrow, key in zip(probe, self.left_key(probe)):
                if key is None:
                    continue
                metrics.hash_probes += 1
                for rrow in table.get(key, ()):
                    out.append(lrow + rrow)
            yield from self._residual_filter(out)

    def _grace(self, build_rows: List[Row]) -> Iterator[Row]:
        """Partition both inputs to temp files, then join each partition
        pair in memory."""
        plan = self.plan
        ctx = self.ctx
        metrics = ctx.metrics
        fanout = max(2, ctx.work_mem_pages - 1)
        right_parts = [
            ctx.create_temp(plan.right.schema) for _ in range(fanout)
        ]
        if build_rows:
            for row, key in zip(build_rows, self.right_key(build_rows)):
                _partition_insert(right_parts, key, row, fanout)
        while True:  # rest of the build side
            batch = self.right.next_batch()
            if batch is None:
                break
            batch = as_row_batch(batch)
            for row, key in zip(batch, self.right_key(batch)):
                _partition_insert(right_parts, key, row, fanout)
        left_parts = [ctx.create_temp(plan.left.schema) for _ in range(fanout)]
        while True:
            batch = self.left.next_batch()
            if batch is None:
                break
            batch = as_row_batch(batch)
            for row, key in zip(batch, self.left_key(batch)):
                _partition_insert(left_parts, key, row, fanout)
        metrics.spills += 1

        for lpart, rpart in zip(left_parts, right_parts):
            table: dict = {}
            rrows = list(rpart.scan_rows())
            if rrows:
                for rrow, key in zip(rrows, self.right_key(rrows)):
                    table.setdefault(key, []).append(rrow)
            lrows = list(lpart.scan_rows())
            out: List[Row] = []
            if lrows:
                for lrow, key in zip(lrows, self.left_key(lrows)):
                    metrics.hash_probes += 1
                    for rrow in table.get(key, ()):
                        out.append(lrow + rrow)
            yield from self._residual_filter(out)
            ctx.drop_temp(lpart)
            ctx.drop_temp(rpart)

    def _residual_filter(self, rows: List[Row]) -> Iterator[Row]:
        if not rows:
            return iter(())
        if self.residual is None:
            return iter(rows)
        mask = self.residual(rows)
        return (row for row, keep in zip(rows, mask) if keep)


def _partition_insert(parts, key: Any, row: Row, fanout: int) -> None:
    if key is None:
        return  # NULL keys never join
    parts[partition_hash(key) % fanout].insert(row)
