"""Sort-key utilities: NULL-aware, direction-aware row ordering.

SQL ordering semantics used throughout the executor:

* ascending:  NULLs first, then values ascending;
* descending: values descending, NULLs last.

(The two are exact reverses, which keeps merge logic simple.)
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence


class _KeyPart:
    """One sort-key component wrapped for comparison."""

    __slots__ = ("value", "ascending")

    def __init__(self, value: Any, ascending: bool):
        self.value = value
        self.ascending = ascending

    def compare(self, other: "_KeyPart") -> int:
        a, b = self.value, other.value
        if a is None and b is None:
            result = 0
        elif a is None:
            result = -1
        elif b is None:
            result = 1
        elif a < b:
            result = -1
        elif a > b:
            result = 1
        else:
            result = 0
        return result if self.ascending else -result


class SortKey:
    """A full multi-part sort key, totally ordered."""

    __slots__ = ("parts",)

    def __init__(self, parts: List[_KeyPart]):
        self.parts = parts

    def compare(self, other: "SortKey") -> int:
        for a, b in zip(self.parts, other.parts):
            c = a.compare(b)
            if c != 0:
                return c
        return 0

    def __lt__(self, other: "SortKey") -> bool:
        return self.compare(other) < 0

    def __le__(self, other: "SortKey") -> bool:
        return self.compare(other) <= 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SortKey) and self.compare(other) == 0

    def __hash__(self):  # pragma: no cover - not used as dict key
        return hash(tuple(p.value for p in self.parts))


def make_key_fn(
    evaluators: Sequence[Callable[[tuple], Any]],
    directions: Sequence[bool],
) -> Callable[[tuple], SortKey]:
    """Build a ``row -> SortKey`` function from compiled key expressions."""

    def key(row: tuple) -> SortKey:
        return SortKey(
            [_KeyPart(ev(row), asc) for ev, asc in zip(evaluators, directions)]
        )

    return key


def sorted_rows(
    rows: List[tuple],
    evaluators: Sequence[Callable[[tuple], Any]],
    directions: Sequence[bool],
) -> List[tuple]:
    return sorted(rows, key=make_key_fn(evaluators, directions))


def cmp_values(a: Any, b: Any) -> int:
    """NULLs-first three-way comparison on scalars."""
    part_a = _KeyPart(a, True)
    part_b = _KeyPart(b, True)
    return part_a.compare(part_b)
