"""Interactive SQL shell: ``python -m repro``.

A minimal REPL over an in-memory :class:`repro.Database`.  Statements end
with ``;``.  Meta-commands:

* ``\\d``            — list tables (rows, pages, indexes)
* ``\\strategy X``   — switch the join-order strategy
* ``\\parallel N``   — set the parallel degree (1 = serial)
* ``\\timing``       — toggle per-query metrics
* ``\\metrics``      — dump the process-wide metrics snapshot (JSON);
  ``\\metrics prom`` renders Prometheus text exposition instead
* ``\\trace``        — show the last request's span tree (trace id,
  lock/WAL/MVCC spans included); ``\\trace export FILE`` writes the last
  request trace as Chrome trace-event JSON for Perfetto/chrome://tracing
* ``\\search``       — show the optimizer's search trace for the last
  planned query (ranked join-order/access-path alternatives)
* ``\\qlog [N]``     — last N query-log records (default 10) with q-error
  and plan-change flags
* ``\\waits``        — cumulative wait events (where time goes); the same
  data SQL sees as ``SELECT * FROM sys_stat_waits``
* ``\\slow [N]``     — last N auto_explain captures (default 5);
  ``\\slow on [MS]`` / ``\\slow off`` toggles capture (threshold in ms)
* ``\\cache``        — plan/result cache sizes, hit rates and last
  invalidation; ``\\cache on`` / ``\\cache off`` toggles both caches
* ``\\load demo``    — load the wholesale demo schema
* ``\\q``            — quit

The ``sys_stat_*`` system tables (statements, tables, waits, metrics,
activity, traces, locks) are ordinary SELECT targets — e.g.
``SELECT * FROM sys_stat_statements ORDER BY total_ms DESC LIMIT 5;``.
"""

from __future__ import annotations

import json
import sys

from . import Database
from .optimizer import STRATEGIES


def _print_result(result, timing: bool) -> None:
    if result.columns:
        widths = [
            max(len(c), *(len(str(row[i])) for row in result.rows))
            if result.rows
            else len(c)
            for i, c in enumerate(result.columns)
        ]
        print(" | ".join(c.ljust(w) for c, w in zip(result.columns, widths)))
        print("-+-".join("-" * w for w in widths))
        for row in result.rows:
            print(
                " | ".join(str(v).ljust(w) for v, w in zip(row, widths))
            )
        print(f"({result.rowcount} rows)")
    if timing and result.io is not None:
        print(
            f"[plan {result.planning_seconds * 1000:.1f} ms, "
            f"exec {result.execution_seconds * 1000:.1f} ms, "
            f"{result.io.reads} reads / {result.io.writes} writes]"
        )


def _describe(db: Database) -> None:
    for info in db.catalog.tables():
        indexes = ", ".join(
            f"{ix.name}({column}{', clustered' if ix.clustered else ''})"
            for column, ix in info.indexes.items()
        )
        print(
            f"  {info.name}: {info.num_rows} rows, {info.num_pages} pages"
            + (f"  [{indexes}]" if indexes else "")
        )


def main(argv=None) -> int:
    db = Database(buffer_pages=512, work_mem_pages=64)
    timing = False
    print("repro SQL shell — \\q quits, \\d lists tables, \\load demo for data")
    buffer = ""
    while True:
        try:
            prompt = "repro> " if not buffer else "  ...> "
            line = input(prompt)
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        stripped = line.strip()
        if not buffer and stripped.startswith("\\"):
            parts = stripped.split()
            command = parts[0]
            if command in ("\\q", "\\quit"):
                return 0
            if command == "\\d":
                _describe(db)
            elif command == "\\timing":
                timing = not timing
                print(f"timing {'on' if timing else 'off'}")
            elif command == "\\metrics":
                if len(parts) > 1 and parts[1] == "prom":
                    print(db.metrics_snapshot(format="prom"), end="")
                else:
                    print(json.dumps(db.metrics_snapshot(), indent=2))
            elif command == "\\trace":
                if len(parts) > 2 and parts[1] == "export":
                    try:
                        db.last_trace_export(parts[2])
                        print(
                            f"wrote {parts[2]} — open it in "
                            "https://ui.perfetto.dev or chrome://tracing"
                        )
                    except Exception as exc:
                        print(f"error: {exc}")
                elif len(parts) > 1 and parts[1] == "export":
                    print("usage: \\trace export FILE")
                elif db.last_request_trace is not None:
                    print(db.last_request_trace.pretty())
                elif db.last_trace is not None:
                    print(db.last_trace.pretty())
                else:
                    print("no query traced yet")
            elif command == "\\search":
                if db.last_search is None or not len(db.last_search):
                    print("no search trace yet (plan a SELECT first)")
                else:
                    print(db.last_search.render(verbose=True))
            elif command == "\\qlog":
                n = 10
                if len(parts) > 1 and parts[1].isdigit():
                    n = int(parts[1])
                records = db.query_log.entries()[-n:]
                if not records:
                    print("query log is empty")
                for record in records:
                    sql_text = " ".join(record.sql.split())
                    if len(sql_text) > 48:
                        sql_text = sql_text[:45] + "..."
                    flag = " PLAN-CHANGED" if record.plan_changed else ""
                    print(
                        f"  q-err={record.q_error:7.2f}  "
                        f"exec={record.execution_ms:7.2f}ms{flag}  "
                        f"{sql_text}"
                    )
            elif command == "\\waits":
                rows = db.waits.rows()
                if not rows:
                    print("no wait events recorded yet")
                for event, count, total_ms, mean_ms in rows:
                    print(
                        f"  {event:<20} n={count:<8} "
                        f"total={total_ms:9.2f}ms  mean={mean_ms:7.3f}ms"
                    )
            elif command == "\\slow":
                if len(parts) > 1 and parts[1] in ("on", "off"):
                    enabled = parts[1] == "on"
                    kwargs = {"enabled": enabled}
                    if enabled and len(parts) > 2:
                        try:
                            kwargs["threshold_ms"] = float(parts[2])
                        except ValueError:
                            print("usage: \\slow on [THRESHOLD_MS]")
                            continue
                    db.auto_explain.configure(**kwargs)
                    state = "on" if enabled else "off"
                    print(
                        f"auto_explain {state}"
                        + (
                            f" (threshold {db.auto_explain.threshold_ms} ms)"
                            if enabled
                            else ""
                        )
                    )
                    continue
                n = 5
                if len(parts) > 1 and parts[1].isdigit():
                    n = int(parts[1])
                captures = db.auto_explain.entries()[-n:]
                if not captures:
                    state = "on" if db.auto_explain.enabled else "off"
                    print(
                        f"no slow-query captures (auto_explain is {state}; "
                        "\\slow on [MS] enables)"
                    )
                for entry in captures:
                    sql_text = " ".join(entry["sql"].split())
                    if len(sql_text) > 60:
                        sql_text = sql_text[:57] + "..."
                    print(
                        f"-- exec={entry['execution_ms']:.2f}ms "
                        f"plan={entry['planning_ms']:.2f}ms "
                        f"rows={entry['rows']}  {sql_text}"
                    )
                    print(entry["plan"])
            elif command == "\\cache":
                if len(parts) > 1 and parts[1] in ("on", "off"):
                    enabled = parts[1] == "on"
                    db.obs.plan_cache = enabled
                    db.obs.result_cache = enabled
                    if not enabled:
                        db.plan_cache.invalidate("\\cache off")
                        db.result_cache.invalidate("\\cache off")
                    print(f"query caches {'on' if enabled else 'off'}")
                    continue
                for label, cache, size, on in (
                    (
                        "plan  ",
                        db.plan_cache,
                        db.obs.plan_cache_size,
                        db.obs.plan_cache,
                    ),
                    (
                        "result",
                        db.result_cache,
                        db.obs.result_cache_size,
                        db.obs.result_cache,
                    ),
                ):
                    s = cache.stats
                    last = (
                        f"  last invalidation: {s.last_invalidation}"
                        if s.last_invalidation
                        else ""
                    )
                    print(
                        f"  {label} [{'on ' if on else 'off'}] "
                        f"{len(cache)}/{size} entries  "
                        f"hits={s.hits} misses={s.misses} "
                        f"hit_rate={s.hit_rate:.1%} "
                        f"dropped={s.invalidations}{last}"
                    )
            elif command == "\\strategy":
                if len(parts) > 1 and parts[1] in STRATEGIES:
                    db.set_strategy(parts[1])
                    print(f"strategy = {parts[1]}")
                else:
                    print(f"usage: \\strategy {{{'|'.join(STRATEGIES)}}}")
            elif command == "\\parallel":
                from dataclasses import replace

                if len(parts) > 1 and parts[1].isdigit() and int(parts[1]) >= 1:
                    db.options = replace(
                        db.options, parallel_degree=int(parts[1])
                    )
                    print(f"parallel degree = {parts[1]}")
                else:
                    print("usage: \\parallel N  (N >= 1)")
            elif command == "\\load" and len(parts) > 1 and parts[1] == "demo":
                from .workloads import WholesaleScale, load_wholesale

                counts = load_wholesale(db, WholesaleScale.small())
                print(f"loaded: {counts}")
            else:
                print(f"unknown meta-command {command!r}")
            continue
        buffer += ("\n" if buffer else "") + line
        if not buffer.strip():
            buffer = ""
            continue
        if not buffer.rstrip().endswith(";"):
            continue
        sql, buffer = buffer, ""
        try:
            result = db.execute(sql)
            _print_result(result, timing)
        except Exception as exc:  # REPL: report, don't die
            print(f"error: {exc}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
