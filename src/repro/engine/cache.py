"""Inter-query caching: plan cache and result cache.

Two bounded LRU caches sit in front of the optimizer:

* :class:`PlanCache` — maps a statement fingerprint (the
  ``normalize_statement`` hash) to the physical plan the optimizer chose
  for it.  Because literals are baked into plans (the planner folds them
  into scan bounds and pushed-down predicates), a hit additionally
  requires the *exact* SQL text to match — the fingerprint is just the
  bucket.  The whole cache is invalidated on any event that could change
  what the optimizer would pick: DDL, ``ANALYZE`` (statistics), a
  planner-options change (strategy switch), or a baseline change.
* :class:`ResultCache` — maps exact SQL text to the rows a read-only
  SELECT produced, together with a snapshot of each referenced table's
  *write epoch*.  The engine bumps a table's epoch on every write to it;
  a cached result is served only while every referenced epoch (and the
  global DDL epoch) is unchanged, so hits are never stale.

Both caches track hit/miss/invalidation counts for ``sys_stat_*`` and
the REPL's ``\\cache`` view.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class CacheStats:
    """Hit/miss accounting shared by both caches."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    last_invalidation: Optional[str] = None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _PlanEntry:
    sql: str
    plan: Any  # PhysicalPlan
    options_key: str


class PlanCache:
    """Bounded LRU of physical plans keyed by statement fingerprint.

    ``lookup``/``store`` carry an *options_key* (a stable rendering of
    the active :class:`PlannerOptions`) so a strategy switch silently
    invalidates every plan picked under the old options.
    """

    def __init__(self, size: int):
        self.size = max(0, size)
        self._entries: "OrderedDict[str, _PlanEntry]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, fingerprint: str, sql: str, options_key: str) -> Any:
        entry = self._entries.get(fingerprint)
        if (
            entry is not None
            and entry.sql == sql
            and entry.options_key == options_key
        ):
            self._entries.move_to_end(fingerprint)
            self.stats.hits += 1
            return entry.plan
        self.stats.misses += 1
        return None

    def store(
        self, fingerprint: str, sql: str, options_key: str, plan: Any
    ) -> None:
        if self.size <= 0:
            return
        self._entries[fingerprint] = _PlanEntry(sql, plan, options_key)
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.size:
            self._entries.popitem(last=False)

    def invalidate(self, reason: str) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.stats.invalidations += dropped
            self.stats.last_invalidation = reason
        return dropped


@dataclass
class _ResultEntry:
    rows: List[Tuple[Any, ...]]
    columns: List[str]
    plan: Any  # PhysicalPlan
    table_epochs: Dict[str, int] = field(default_factory=dict)
    global_epoch: int = 0


class ResultCache:
    """Bounded LRU of SELECT results keyed by exact SQL text.

    Every entry snapshots the write epoch of each table the plan reads;
    ``lookup`` re-checks those epochs so a write to any referenced table
    (or any DDL, via the global epoch) makes the entry invisible.  Stale
    entries are evicted lazily, on the lookup that notices them.
    """

    def __init__(self, size: int):
        self.size = max(0, size)
        self._entries: "OrderedDict[str, _ResultEntry]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, sql: str, global_epoch: int, table_epochs: Dict[str, int]
    ) -> Optional[_ResultEntry]:
        entry = self._entries.get(sql)
        if entry is not None:
            stale = entry.global_epoch != global_epoch or any(
                table_epochs.get(name, 0) != epoch
                for name, epoch in entry.table_epochs.items()
            )
            if stale:
                del self._entries[sql]
                self.stats.invalidations += 1
                self.stats.last_invalidation = "stale epoch"
            else:
                self._entries.move_to_end(sql)
                self.stats.hits += 1
                return entry
        self.stats.misses += 1
        return None

    def store(
        self,
        sql: str,
        rows: List[Tuple[Any, ...]],
        columns: List[str],
        plan: Any,
        table_epochs: Dict[str, int],
        global_epoch: int,
    ) -> None:
        if self.size <= 0:
            return
        self._entries[sql] = _ResultEntry(
            list(rows), list(columns), plan, dict(table_epochs), global_epoch
        )
        self._entries.move_to_end(sql)
        while len(self._entries) > self.size:
            self._entries.popitem(last=False)

    def invalidate(self, reason: str) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.stats.invalidations += dropped
            self.stats.last_invalidation = reason
        return dropped
