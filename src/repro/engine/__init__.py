"""Engine facade: the Database class and its per-connection sessions."""

from .database import Database, EngineError, QueryResult
from .session import Session

__all__ = ["Database", "EngineError", "QueryResult", "Session"]
