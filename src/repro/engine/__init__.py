"""Engine facade: the Database class."""

from .database import Database, EngineError, QueryResult

__all__ = ["Database", "EngineError", "QueryResult"]
