"""Views: definition storage, view merging, and materialization fallback.

Two classic evaluation strategies, chosen per use:

* **View merging** — when the view is a simple select-project-filter over
  base tables (or other mergeable views), its FROM entries and WHERE
  conjuncts are spliced into the referencing query under fresh binding
  names, and references to the view's output columns are rewritten to the
  underlying expressions.  The optimizer then sees one flat join region —
  view usage costs nothing.
* **Materialization** — views the merger cannot flatten (aggregates,
  DISTINCT, ORDER BY/LIMIT, expression outputs) are executed and loaded
  into a transient table which the outer query references.  This is
  decomposition again: answer the inner query first, then optimize the
  rest.

The expander rewrites the AST before planning, so every planner strategy
benefits identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..expr import ColumnRef, Expr, and_, map_expr
from ..sql.ast import JoinClause, SelectItem, SelectStmt, TableRef


class ViewError(Exception):
    """Raised for invalid view definitions or unsupported references."""


@dataclass
class ViewDef:
    name: str
    select: SelectStmt
    sql: str  # original definition text, for display


@dataclass
class Expansion:
    """Result of expanding views in one statement."""

    stmt: SelectStmt
    #: names of transient tables created for materialized views; the caller
    #: drops them once the query has executed
    transient_tables: List[str] = field(default_factory=list)


def is_mergeable(view: SelectStmt) -> bool:
    """Simple select-project-filter views can be merged in place."""
    if (
        view.group_by
        or view.having is not None
        or view.order_by
        or view.limit is not None
        or view.distinct
    ):
        return False
    for item in view.items:
        if item.is_star:
            continue
        if not isinstance(item.expr, ColumnRef):
            return False
    return True


class ViewExpander:
    """Rewrites statements so no view names remain in FROM."""

    def __init__(
        self,
        views: Dict[str, ViewDef],
        is_table: Callable[[str], bool],
        materialize: Callable[[SelectStmt, str], str],
        table_columns: Callable[[str], List[str]],
        view_output_names: Callable[[SelectStmt], List[str]],
    ):
        self.views = views
        self.is_table = is_table
        self.materialize = materialize
        self.table_columns = table_columns
        self.view_output_names = view_output_names
        self._counter = 0

    # -- public ------------------------------------------------------------------

    def expand(self, stmt: SelectStmt) -> Expansion:
        expansion = Expansion(stmt)
        expansion.stmt = self._expand_stmt(stmt, expansion, depth=0)
        return expansion

    # -- internals ------------------------------------------------------------------

    def _expand_stmt(
        self, stmt: SelectStmt, expansion: Expansion, depth: int
    ) -> SelectStmt:
        if depth > 16:
            raise ViewError("view nesting too deep (cycle?)")
        refs = list(stmt.from_tables) + [j.table for j in stmt.joins]
        if not any(self._is_view(r.table) for r in refs):
            return stmt

        out = SelectStmt(
            items=list(stmt.items),
            from_tables=[],
            joins=[],
            where=stmt.where,
            group_by=list(stmt.group_by),
            having=stmt.having,
            order_by=list(stmt.order_by),
            limit=stmt.limit,
            distinct=stmt.distinct,
        )
        extra_where: List[Expr] = []
        renames: List[Tuple[str, Dict[str, Expr], List[str]]] = []

        def place(ref: TableRef, condition: Optional[Expr], from_join: bool):
            if not self._is_view(ref.table):
                if from_join:
                    out.joins.append(JoinClause(ref, condition))
                else:
                    out.from_tables.append(ref)
                return
            view = self.views[ref.table.lower()]
            inner = self._expand_stmt(view.select, expansion, depth + 1)
            if is_mergeable(inner):
                mapping, names = self._merge(
                    inner, ref.binding, out, extra_where, from_join, condition
                )
                renames.append((ref.binding, mapping, names))
            else:
                table_name = self._materialize_view(view, inner, expansion)
                new_ref = TableRef(table_name, ref.binding)
                if from_join:
                    out.joins.append(JoinClause(new_ref, condition))
                else:
                    out.from_tables.append(new_ref)

        for ref in stmt.from_tables:
            place(ref, None, from_join=False)
        for join in stmt.joins:
            place(join.table, join.condition, from_join=True)

        if renames:
            out_stmt = self._rename_outer(out, renames)
        else:
            out_stmt = out
        if extra_where:
            combined = (
                and_(out_stmt.where, *extra_where)
                if out_stmt.where is not None
                else (
                    extra_where[0]
                    if len(extra_where) == 1
                    else and_(*extra_where)
                )
            )
            out_stmt.where = combined
        return out_stmt

    def _is_view(self, name: str) -> bool:
        return name.lower() in self.views

    def _merge(
        self,
        inner: SelectStmt,
        binding: str,
        out: SelectStmt,
        extra_where: List[Expr],
        from_join: bool,
        condition: Optional[Expr],
    ) -> Tuple[Dict[str, Expr], List[str]]:
        """Splice a mergeable view body into *out* under fresh bindings.

        Returns the mapping from the view's output column names to the
        rewritten underlying expressions, plus the output name list.
        """
        fresh: Dict[str, str] = {}
        inner_refs = list(inner.from_tables) + [j.table for j in inner.joins]
        for ref in inner_refs:
            fresh[ref.binding] = self._fresh_binding(binding, ref.binding)

        def rename_inner(expr: Expr) -> Expr:
            return map_expr(expr, lambda e: self._rename_columns(e, fresh, inner_refs))

        first = True
        for ref in inner.from_tables:
            new_ref = TableRef(ref.table, fresh[ref.binding])
            if from_join and first:
                out.joins.append(JoinClause(new_ref, condition))
            elif from_join:
                out.joins.append(JoinClause(new_ref, None))
            else:
                out.from_tables.append(new_ref)
            first = False
        for join in inner.joins:
            new_ref = TableRef(join.table.table, fresh[join.table.binding])
            cond = (
                rename_inner(join.condition)
                if join.condition is not None
                else None
            )
            out.joins.append(JoinClause(new_ref, cond))
        if inner.where is not None:
            extra_where.append(rename_inner(inner.where))

        # Build output-name -> expression mapping.
        mapping: Dict[str, Expr] = {}
        names: List[str] = []
        for item in inner.items:
            if item.is_star:
                for ref in inner_refs:
                    if (
                        item.star_qualifier is not None
                        and ref.binding != item.star_qualifier
                    ):
                        continue
                    for column in self.table_columns(ref.table):
                        if column in mapping:
                            continue
                        mapping[column] = ColumnRef(
                            f"{fresh[ref.binding]}.{column}"
                        )
                        names.append(column)
                continue
            assert isinstance(item.expr, ColumnRef)
            name = item.alias or item.expr.name.split(".")[-1]
            mapping[name] = rename_inner(item.expr)
            names.append(name)
        return mapping, names

    def _fresh_binding(self, outer: str, inner: str) -> str:
        self._counter += 1
        return f"__{outer}_{inner}{self._counter}"

    def _rename_columns(
        self, expr: Expr, fresh: Dict[str, str], inner_refs: List[TableRef]
    ) -> Expr:
        if not isinstance(expr, ColumnRef):
            return expr
        name = expr.name
        if "." in name:
            qualifier, bare = name.split(".", 1)
            if qualifier in fresh:
                return ColumnRef(f"{fresh[qualifier]}.{bare}")
            return expr
        # bare name inside the view: qualify against its FROM tables
        hits = [
            ref
            for ref in inner_refs
            if name in self.table_columns(ref.table)
        ]
        if len(hits) == 1:
            return ColumnRef(f"{fresh[hits[0].binding]}.{name}")
        if len(hits) > 1:
            raise ViewError(f"ambiguous column {name!r} in view body")
        return expr

    def _rename_outer(
        self,
        stmt: SelectStmt,
        renames: List[Tuple[str, Dict[str, Expr], List[str]]],
    ) -> SelectStmt:
        """Rewrite outer references to merged views' columns."""
        qualified: Dict[str, Expr] = {}
        bare: Dict[str, List[Expr]] = {}
        star_map: Dict[str, List[Tuple[str, Expr]]] = {}
        for binding, mapping, names in renames:
            star_map[binding] = [(n, mapping[n]) for n in names]
            for name, target in mapping.items():
                qualified[f"{binding}.{name}"] = target
                bare.setdefault(name, []).append(target)

        def rewrite_ref(expr: Expr) -> Expr:
            if not isinstance(expr, ColumnRef):
                return expr
            if expr.name in qualified:
                return qualified[expr.name]
            if "." not in expr.name:
                targets = bare.get(expr.name, [])
                if len(targets) == 1:
                    return targets[0]
                if len(targets) > 1:
                    raise ViewError(
                        f"ambiguous column {expr.name!r} across merged views"
                    )
            return expr

        def rewrite(expr: Optional[Expr]) -> Optional[Expr]:
            if expr is None:
                return None
            return map_expr(expr, rewrite_ref)

        items: List[SelectItem] = []
        for item in stmt.items:
            if item.is_star:
                if item.star_qualifier in star_map:
                    for name, target in star_map[item.star_qualifier]:
                        items.append(SelectItem(target, name))
                    continue
                if item.star_qualifier is None and star_map:
                    # bare *: expand merged views in place, keep the rest
                    items.append(SelectItem(None))
                    # NOTE: bare * with merged views would also pull the
                    # views' hidden internals; expand explicitly instead.
                    items.pop()
                    for ref_binding, pairs in star_map.items():
                        for name, target in pairs:
                            items.append(SelectItem(target, name))
                    # plus every non-view table's columns
                    for ref in stmt.from_tables:
                        for column in self.table_columns(ref.table):
                            items.append(
                                SelectItem(
                                    ColumnRef(f"{ref.binding}.{column}"),
                                    column,
                                )
                            )
                    for join in stmt.joins:
                        if join.table.binding.startswith("__"):
                            continue
                        for column in self.table_columns(join.table.table):
                            items.append(
                                SelectItem(
                                    ColumnRef(
                                        f"{join.table.binding}.{column}"
                                    ),
                                    column,
                                )
                            )
                    continue
                items.append(item)
                continue
            new_expr = rewrite(item.expr)
            alias = item.alias
            if (
                alias is None
                and new_expr is not item.expr
                and isinstance(item.expr, ColumnRef)
            ):
                # keep the user-visible name the view exposed
                alias = item.expr.name.split(".")[-1]
            items.append(SelectItem(new_expr, alias, None))

        out = SelectStmt(
            items=items,
            from_tables=stmt.from_tables,
            joins=[
                JoinClause(j.table, rewrite(j.condition)) for j in stmt.joins
            ],
            where=rewrite(stmt.where),
            group_by=[rewrite(g) for g in stmt.group_by],
            having=rewrite(stmt.having),
            order_by=[
                type(o)(rewrite(o.expr), o.ascending) for o in stmt.order_by
            ],
            limit=stmt.limit,
            distinct=stmt.distinct,
        )
        return out

    def _materialize_view(
        self, view: ViewDef, inner: SelectStmt, expansion: Expansion
    ) -> str:
        self._counter += 1
        table_name = f"__view_{view.name}_{self._counter}"
        created = self.materialize(inner, table_name)
        expansion.transient_tables.append(created)
        return created
