"""Sessions: per-connection statement context and transaction state.

Every statement runs under a session.  A session owns at most one open
*explicit* transaction (``BEGIN`` ... ``COMMIT``/``ROLLBACK``); outside
of one, each DML statement autocommits.  The :class:`Database` keeps a
default session for the plain ``db.execute(sql)`` API, and the socket
server creates one session per connection — so connections get
independent transaction state, and ``sys_stat_activity`` can attribute
statements to sessions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..wal.manager import Transaction
    from .database import Database, QueryResult


class Session:
    """One logical connection to a :class:`Database`."""

    def __init__(self, db: "Database", session_id: int):
        self.db = db
        self.id = session_id
        #: the open explicit transaction, if any
        self.txn: Optional["Transaction"] = None
        self.closed = False

    @property
    def in_transaction(self) -> bool:
        return self.txn is not None

    def execute(self, sql: str, tracer=None) -> "QueryResult":
        return self.db.execute(sql, session=self, tracer=tracer)

    def query(self, sql: str) -> "QueryResult":
        return self.db.query(sql, session=self)

    def close(self) -> None:
        """End the session; an open transaction rolls back (the semantics
        of a dropped connection)."""
        if self.closed:
            return
        if self.txn is not None:
            self.db.rollback_session_txn(self)
        self.closed = True
        self.db._forget_session(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "in txn" if self.in_transaction else "idle"
        return f"Session(id={self.id}, {state})"
