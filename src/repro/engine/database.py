"""The `Database` facade: the library's main public entry point.

::

    from repro import Database

    db = Database(buffer_pages=128, work_mem_pages=32)
    db.execute("CREATE TABLE t (id INT, name TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    db.execute("CREATE INDEX ix ON t (id)")
    db.execute("ANALYZE t")
    result = db.query("SELECT name FROM t WHERE id = 2")
    print(result.rows)            # [('b',)]
    print(db.explain("SELECT ...")) # the physical plan with estimates

Ties together catalog, SQL front-end, rewriter, optimizer and executor,
and exposes the per-query metrics the benchmark harness consumes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..algebra import build_plan, prune_columns
from ..catalog import Catalog, HistogramKind, IndexKind, TableInfo
from ..executor import ExecContext, ExecMetrics, run
from ..expr import Literal
from ..optimizer import CostModel, Planner, PlannerOptions, PlannerStats
from ..physical import PhysicalPlan
from ..sql import (
    AnalyzeStmt,
    CreateIndexStmt,
    CreateTableStmt,
    CreateViewStmt,
    DeleteStmt,
    DropTableStmt,
    DropViewStmt,
    ExplainStmt,
    InsertStmt,
    SelectStmt,
    UpdateStmt,
    parse,
)
from .views import Expansion, ViewDef, ViewError, ViewExpander
from ..storage import BufferPool, DiskManager, IOStats, Replacement
from ..types import Column, Schema


class EngineError(Exception):
    """Raised for statements the engine cannot execute."""


@dataclass
class QueryResult:
    """Rows plus everything the experiments need to know about the run."""

    rows: List[Tuple[Any, ...]]
    columns: List[str]
    plan: Optional[PhysicalPlan] = None
    io: Optional[IOStats] = None
    exec_metrics: Optional[ExecMetrics] = None
    planner_stats: Optional[PlannerStats] = None
    planning_seconds: float = 0.0
    execution_seconds: float = 0.0

    @property
    def rowcount(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> List[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]


class Database:
    """An in-process relational database with a cost-based optimizer."""

    def __init__(
        self,
        buffer_pages: int = 256,
        work_mem_pages: int = 32,
        page_size: int = 4096,
        replacement: Replacement = Replacement.LRU,
        options: Optional[PlannerOptions] = None,
    ):
        self.disk = DiskManager(page_size)
        self.pool = BufferPool(self.disk, buffer_pages, replacement)
        self.catalog = Catalog(self.pool)
        self.work_mem_pages = work_mem_pages
        self.options = options or PlannerOptions()
        self.model = CostModel(
            work_mem_pages=work_mem_pages, buffer_pages=buffer_pages
        )
        self.views: Dict[str, ViewDef] = {}
        self._live_transients: List[str] = []

    # -- statement dispatch ------------------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        """Parse and run one statement of any kind."""
        stmt = parse(sql)
        if isinstance(stmt, SelectStmt):
            return self._select(stmt)
        if isinstance(stmt, ExplainStmt):
            if stmt.analyze:
                result = self._select(stmt.inner)
                text = result.plan.pretty(actuals=True)
                text += (
                    f"\nexecution: {result.execution_seconds * 1000:.1f} ms, "
                    f"{result.io.reads} reads / {result.io.writes} writes, "
                    f"{result.rowcount} rows"
                )
            else:
                text = self.explain_stmt(stmt.inner)
            return QueryResult(
                rows=[(line,) for line in text.splitlines()],
                columns=["plan"],
            )
        if isinstance(stmt, CreateTableStmt):
            schema = Schema(
                Column(c.name, c.dtype, stmt.table, c.nullable)
                for c in stmt.columns
            )
            self.catalog.create_table(stmt.table, schema)
            for c in stmt.columns:
                if c.primary_key:
                    self.catalog.create_index(
                        f"pk_{stmt.table}_{c.name}",
                        stmt.table,
                        c.name,
                        IndexKind.BTREE,
                        clustered=True,
                    )
            return QueryResult(rows=[], columns=[])
        if isinstance(stmt, CreateIndexStmt):
            kind = IndexKind.BTREE if stmt.using == "btree" else IndexKind.HASH
            self.catalog.create_index(
                stmt.name, stmt.table, stmt.column, kind, stmt.clustered
            )
            return QueryResult(rows=[], columns=[])
        if isinstance(stmt, DropTableStmt):
            self.catalog.drop_table(stmt.table)
            return QueryResult(rows=[], columns=[])
        if isinstance(stmt, InsertStmt):
            self._insert(stmt)
            return QueryResult(rows=[], columns=[])
        if isinstance(stmt, CreateViewStmt):
            key = stmt.name.lower()
            if self.catalog.has_table(stmt.name) or key in self.views:
                raise EngineError(f"name {stmt.name!r} already in use")
            self.views[key] = ViewDef(stmt.name, stmt.select, sql)
            return QueryResult(rows=[], columns=[])
        if isinstance(stmt, DropViewStmt):
            if stmt.name.lower() not in self.views:
                raise EngineError(f"no such view: {stmt.name}")
            del self.views[stmt.name.lower()]
            return QueryResult(rows=[], columns=[])
        if isinstance(stmt, DeleteStmt):
            count = self._delete(stmt)
            return QueryResult(rows=[(count,)], columns=["deleted"])
        if isinstance(stmt, UpdateStmt):
            count = self._update(stmt)
            return QueryResult(rows=[(count,)], columns=["updated"])
        if isinstance(stmt, AnalyzeStmt):
            if stmt.table is None:
                self.catalog.analyze_all()
            else:
                self.catalog.analyze(stmt.table)
            return QueryResult(rows=[], columns=[])
        raise EngineError(f"unsupported statement {type(stmt).__name__}")

    def query(self, sql: str) -> QueryResult:
        """Run a SELECT and return rows + metrics."""
        stmt = parse(sql)
        if not isinstance(stmt, SelectStmt):
            raise EngineError("query() expects a SELECT; use execute()")
        return self._select(stmt)

    # -- planning ---------------------------------------------------------------------------

    def plan_select(self, stmt: SelectStmt) -> Tuple[PhysicalPlan, PlannerStats]:
        """Plan a SELECT.  Views referenced by *stmt* are expanded here; a
        non-mergeable view is materialized into a transient table that
        lives until the query that created it finishes (``_select`` drops
        it; direct ``plan()`` callers on such queries own the cleanup via
        :meth:`drop_transients`)."""
        expansion = self._expand_views(stmt)
        self._live_transients.extend(expansion.transient_tables)
        stmt = self._decompose_subqueries(expansion.stmt)
        logical = build_plan(stmt, self.catalog)
        planner = Planner(self.catalog, self.model, self.options)
        physical = planner.plan_logical(logical)
        return physical, planner.last_stats or PlannerStats()

    # -- views -------------------------------------------------------------------------

    _live_transients: List[str]

    def _expand_views(self, stmt: SelectStmt) -> Expansion:
        if not self.views:
            return Expansion(stmt)
        expander = ViewExpander(
            views=self.views,
            is_table=self.catalog.has_table,
            materialize=self._materialize_view,
            table_columns=self._table_columns,
            view_output_names=lambda s: [],
        )
        return expander.expand(stmt)

    def _table_columns(self, table: str) -> List[str]:
        if self.catalog.has_table(table):
            return self.catalog.table(table).schema.names()
        view = self.views.get(table.lower())
        if view is None:
            return []
        # output names of a view: derived from its select list
        names: List[str] = []
        for item in view.select.items:
            if item.is_star:
                for ref in list(view.select.from_tables) + [
                    j.table for j in view.select.joins
                ]:
                    for column in self._table_columns(ref.table):
                        if column not in names:
                            names.append(column)
                continue
            if item.alias:
                names.append(item.alias)
            else:
                from ..expr import ColumnRef

                if isinstance(item.expr, ColumnRef):
                    names.append(item.expr.name.split(".")[-1])
                else:
                    names.append(str(item.expr))
        return names

    def _materialize_view(self, inner: SelectStmt, table_name: str) -> str:
        result = self._select(inner)
        schema = Schema(
            Column(column.name, column.dtype, table_name, True)
            for column in result.plan.schema
        )
        self.catalog.create_table(table_name, schema)
        self.catalog.insert_rows(table_name, result.rows)
        self.catalog.analyze(table_name)
        return table_name

    def drop_transients(self) -> None:
        """Drop transient tables left over from planning view queries."""
        for name in self._live_transients:
            if self.catalog.has_table(name):
                self.catalog.drop_table(name)
        self._live_transients = []

    # -- subquery decomposition (INGRES-style) ----------------------------------------

    def _decompose_subqueries(self, stmt: SelectStmt) -> SelectStmt:
        """Replace uncorrelated subquery predicates with their results.

        The classic decomposition strategy: run each independent inner
        query first, substitute its answer as literals, then optimize the
        (now subquery-free) outer query.  Correlated subqueries are
        rejected (the inner query must plan standalone).
        """
        from dataclasses import replace as dc_replace

        from ..expr import Expr, SubqueryExpr, contains_subquery, map_expr

        def rewrite(expr: Optional[Expr]) -> Optional[Expr]:
            if expr is None or not contains_subquery(expr):
                return expr
            return map_expr(expr, self._substitute_subquery)

        stmt = self._decorrelate(stmt)
        changed = False
        where = rewrite(stmt.where)
        having = rewrite(stmt.having)
        joins = []
        for join in stmt.joins:
            condition = rewrite(join.condition)
            if condition is not join.condition:
                changed = True
                join = dc_replace(join, condition=condition)
            joins.append(join)
        if where is stmt.where and having is stmt.having and not changed:
            return stmt
        out = SelectStmt(
            items=stmt.items,
            from_tables=stmt.from_tables,
            joins=joins,
            where=where,
            group_by=stmt.group_by,
            having=having,
            order_by=stmt.order_by,
            limit=stmt.limit,
            distinct=stmt.distinct,
        )
        return out

    # -- correlated subqueries: semi-join decorrelation -------------------------------

    def _decorrelate(self, stmt: SelectStmt) -> SelectStmt:
        """Rewrite correlated ``IN``/``EXISTS`` conjuncts as semi-joins.

        The classic decorrelation: a top-level-conjunct subquery whose only
        references to the outer query are equality links becomes a join
        against the DISTINCT projection of the inner query over its link
        (and output) columns.  The inner query is materialized into a
        transient table first (decomposition), so the optimizer then sees a
        plain join.

        Unsupported shapes (negated forms, non-equality correlation,
        correlated aggregates, subqueries under OR) are left alone and fail
        later with a clear error if genuinely correlated.
        """
        from ..expr import (
            ColumnRef,
            SubqueryExpr,
            and_,
            eq,
            split_conjuncts,
        )
        from ..sql.ast import TableRef

        if stmt.where is None:
            return stmt
        conjuncts = split_conjuncts(stmt.where)
        if not any(isinstance(c, SubqueryExpr) for c in conjuncts):
            return stmt

        outer_bindings = {
            ref.binding: ref.table
            for ref in list(stmt.from_tables) + [j.table for j in stmt.joins]
        }
        out_conjuncts: List[Any] = []
        extra_tables: List[TableRef] = []
        changed = False
        for conjunct in conjuncts:
            replacement = None
            if (
                isinstance(conjunct, SubqueryExpr)
                and not conjunct.negated
                and conjunct.kind in ("in", "exists")
            ):
                replacement = self._decorrelate_one(
                    conjunct, outer_bindings, extra_tables,
                    len(extra_tables),
                )
            if replacement is None:
                out_conjuncts.append(conjunct)
            else:
                out_conjuncts.extend(replacement)
                changed = True
        if not changed:
            return stmt
        from ..expr import conjoin

        return SelectStmt(
            items=stmt.items,
            from_tables=list(stmt.from_tables) + extra_tables,
            joins=stmt.joins,
            where=conjoin(out_conjuncts),
            group_by=stmt.group_by,
            having=stmt.having,
            order_by=stmt.order_by,
            limit=stmt.limit,
            distinct=stmt.distinct,
        )

    def _decorrelate_one(
        self,
        sub,
        outer_bindings: Dict[str, str],
        extra_tables: List[Any],
        counter: int,
    ) -> Optional[List[Any]]:
        """Try to turn one correlated subquery conjunct into join conjuncts
        plus a transient FROM entry.  Returns None when not applicable
        (including the uncorrelated case, which the literal-substitution
        path handles better)."""
        from ..expr import (
            ColEqCol,
            ColumnRef,
            classify_conjunct,
            conjoin,
            eq,
            referenced_columns,
            split_conjuncts,
        )
        from ..sql.ast import SelectItem, TableRef

        inner: SelectStmt = sub.payload
        if (
            inner.group_by
            or inner.having is not None
            or inner.order_by
            or inner.limit is not None
        ):
            return None
        if sub.kind == "in" and len(inner.items) != 1:
            return None
        inner_refs = list(inner.from_tables) + [j.table for j in inner.joins]
        inner_columns: Dict[str, int] = {}
        for ref in inner_refs:
            for column in self._table_columns(ref.table):
                inner_columns[column] = inner_columns.get(column, 0) + 1
        inner_bindings = {ref.binding for ref in inner_refs}

        def side_of(name: str) -> Optional[str]:
            if "." in name:
                qualifier = name.split(".", 1)[0]
                if qualifier in inner_bindings:
                    return "inner"
                if qualifier in outer_bindings:
                    return "outer"
                return None
            if inner_columns.get(name, 0) == 1:
                return "inner"
            if inner_columns.get(name, 0) > 1:
                return None  # ambiguous inside the subquery
            for table in outer_bindings.values():
                if name in self._table_columns(table):
                    return "outer"
            return None

        pure_inner: List[Any] = []
        links: List[Any] = []  # (inner ColumnRef, outer ColumnRef)
        for conjunct in split_conjuncts(inner.where):
            refs = referenced_columns(conjunct)
            sides = {side_of(name) for name in refs}
            if None in sides:
                return None
            if sides <= {"inner"}:
                pure_inner.append(conjunct)
                continue
            classified = classify_conjunct(conjunct)
            if not isinstance(classified, ColEqCol):
                return None  # non-equality correlation: bail
            left_side = side_of(classified.left)
            right_side = side_of(classified.right)
            if {left_side, right_side} != {"inner", "outer"}:
                return None
            inner_name, outer_name = (
                (classified.left, classified.right)
                if left_side == "inner"
                else (classified.right, classified.left)
            )
            links.append((ColumnRef(inner_name), ColumnRef(outer_name)))
        if not links:
            return None  # uncorrelated: let literal substitution handle it

        # Build the inner DISTINCT projection over output + link columns.
        items: List[SelectItem] = []
        if sub.kind == "in":
            items.append(SelectItem(inner.items[0].expr, "__c0"))
        for i, (inner_col, _) in enumerate(links):
            items.append(SelectItem(inner_col, f"__l{i}"))
        derived = SelectStmt(
            items=items,
            from_tables=list(inner.from_tables),
            joins=list(inner.joins),
            where=conjoin(pure_inner),
            distinct=True,
        )
        alias = f"__dq{counter}_{len(self._live_transients)}"
        table_name = self._materialize_view(derived, f"__decorr_{alias}")
        self._live_transients.append(table_name)
        extra_tables.append(TableRef(table_name, alias))

        conjuncts_out: List[Any] = []
        if sub.kind == "in":
            conjuncts_out.append(eq(sub.operand, ColumnRef(f"{alias}.__c0")))
        for i, (_, outer_col) in enumerate(links):
            conjuncts_out.append(eq(ColumnRef(f"{alias}.__l{i}"), outer_col))
        return conjuncts_out

    def _substitute_subquery(self, expr):
        from ..expr import InList, Literal, SubqueryExpr

        if not isinstance(expr, SubqueryExpr):
            return expr
        inner: SelectStmt = expr.payload
        try:
            result = self._select(inner)
        except Exception as exc:
            raise EngineError(
                "subquery failed (correlated subqueries are not supported: "
                f"the inner query must run standalone): {exc}"
            ) from exc
        if expr.kind == "exists":
            return Literal(bool(result.rows) != expr.negated)
        if expr.kind == "scalar":
            if len(result.columns) != 1:
                raise EngineError("scalar subquery must return one column")
            if len(result.rows) > 1:
                raise EngineError("scalar subquery returned more than one row")
            value = result.rows[0][0] if result.rows else None
            return Literal(value)
        # 'in'
        if len(result.columns) != 1:
            raise EngineError("IN subquery must return exactly one column")
        values = {row[0] for row in result.rows if row[0] is not None}
        had_null = any(row[0] is None for row in result.rows)
        if not values and not had_null:
            return Literal(expr.negated)  # IN () = FALSE, NOT IN () = TRUE
        items = tuple(Literal(v) for v in sorted(values, key=repr))
        if had_null:
            items = items + (Literal(None),)
        return InList(expr.operand, items, expr.negated)

    def plan(self, sql: str) -> PhysicalPlan:
        stmt = parse(sql)
        if isinstance(stmt, ExplainStmt):
            stmt = stmt.inner
        if not isinstance(stmt, SelectStmt):
            raise EngineError("plan() expects a SELECT")
        return self.plan_select(stmt)[0]

    def explain(self, sql: str) -> str:
        return self.plan(sql).pretty()

    def explain_stmt(self, stmt: SelectStmt) -> str:
        return self.plan_select(stmt)[0].pretty()

    # -- execution ---------------------------------------------------------------------------

    def run_plan(self, physical: PhysicalPlan, cold: bool = False) -> QueryResult:
        """Execute an already-built physical plan, measuring real I/O.

        ``cold=True`` clears the buffer pool first so the run pays full
        page-fetch costs (what the experiments usually want).
        """
        if cold:
            self.pool.clear()
        before = self.disk.stats.snapshot()
        ctx = ExecContext(self.pool, self.work_mem_pages)
        start = time.perf_counter()
        rows = run(physical, ctx)
        elapsed = time.perf_counter() - start
        return QueryResult(
            rows=rows,
            columns=physical.schema.names(),
            plan=physical,
            io=self.disk.stats.delta(before),
            exec_metrics=ctx.metrics,
            execution_seconds=elapsed,
        )

    def _select(self, stmt: SelectStmt) -> QueryResult:
        start = time.perf_counter()
        before_transients = len(self._live_transients)
        physical, pstats = self.plan_select(stmt)
        planning = time.perf_counter() - start
        try:
            result = self.run_plan(physical)
        finally:
            # transient tables created for THIS statement's views
            mine = self._live_transients[before_transients:]
            del self._live_transients[before_transients:]
            for name in mine:
                if self.catalog.has_table(name):
                    self.catalog.drop_table(name)
        result.planner_stats = pstats
        result.planning_seconds = planning
        return result

    def _insert(self, stmt: InsertStmt) -> int:
        info = self.catalog.table(stmt.table)
        rows = []
        for value_row in stmt.rows:
            literals: List[Any] = []
            for expr in value_row:
                from ..expr import fold_constants

                folded = fold_constants(expr)
                if not isinstance(folded, Literal):
                    raise EngineError(
                        f"INSERT values must be constants, got {expr}"
                    )
                literals.append(folded.value)
            if stmt.columns is None:
                rows.append(tuple(literals))
            else:
                by_name = dict(zip(stmt.columns, literals))
                full = []
                for column in info.schema:
                    full.append(by_name.pop(column.name, None))
                if by_name:
                    raise EngineError(
                        f"unknown INSERT columns: {sorted(by_name)}"
                    )
                rows.append(tuple(full))
        return self.catalog.insert_rows(stmt.table, rows)

    def _matching_rids(self, info: TableInfo, where) -> List[Tuple[Any, Any]]:
        """(rid, row) pairs matching a WHERE clause (full scan; fine for the
        DML volumes this engine targets)."""
        from ..expr import compile_predicate

        if where is None:
            return list(info.heap.scan())
        schema = info.schema
        predicate = compile_predicate(where, schema)
        return [(rid, row) for rid, row in info.heap.scan() if predicate(row)]

    def _delete(self, stmt: DeleteStmt) -> int:
        info = self.catalog.table(stmt.table)
        victims = self._matching_rids(info, stmt.where)
        for rid, row in victims:
            info.heap.delete(rid)
            for index in info.indexes.values():
                value = self._index_key_of(info, row, index)
                if value is None and index.kind is IndexKind.HASH:
                    continue
                index.structure.delete(value, rid)
        return len(victims)

    @staticmethod
    def _index_key_of(info: TableInfo, row, index) -> Any:
        positions = [info.schema.index_of(c) for c in index.columns]
        if len(positions) == 1:
            return row[positions[0]]
        return tuple(row[p] for p in positions)

    def _update(self, stmt: UpdateStmt) -> int:
        from ..expr import compile_expr

        info = self.catalog.table(stmt.table)
        schema = info.schema
        positions = []
        setters = []
        for column, expr in stmt.assignments:
            positions.append(schema.index_of(column))
            setters.append(compile_expr(expr, schema))
        victims = self._matching_rids(info, stmt.where)
        for rid, row in victims:
            new_row = list(row)
            for pos, setter in zip(positions, setters):
                new_row[pos] = setter(row)
            new_rid = info.heap.update(rid, tuple(new_row))
            stored = info.heap.fetch(new_rid)
            for index in info.indexes.values():
                old_value = self._index_key_of(info, row, index)
                new_value = self._index_key_of(info, stored, index)
                if old_value == new_value and new_rid == rid:
                    continue
                if not (old_value is None and index.kind is IndexKind.HASH):
                    index.structure.delete(old_value, rid)
                if not (new_value is None and index.kind is IndexKind.HASH):
                    index.structure.insert(new_value, new_rid)
        return len(victims)

    # -- convenience --------------------------------------------------------------------------

    def insert_rows(self, table: str, rows: Sequence[Sequence[Any]]) -> int:
        return self.catalog.insert_rows(table, rows)

    def analyze(self, table: Optional[str] = None, **kwargs: Any) -> None:
        if table is None:
            self.catalog.analyze_all(**kwargs)
        else:
            self.catalog.analyze(table, **kwargs)

    def table(self, name: str) -> TableInfo:
        return self.catalog.table(name)

    def reset_io(self) -> None:
        self.disk.reset_stats()
        self.pool.reset_stats()

    def set_strategy(self, strategy: str, **kwargs: Any) -> None:
        """Switch join-order strategy ('dp', 'greedy', 'naive', ...)."""
        self.options = PlannerOptions(strategy=strategy, **kwargs)
