"""The `Database` facade: the library's main public entry point.

::

    from repro import Database

    db = Database(buffer_pages=128, work_mem_pages=32)
    db.execute("CREATE TABLE t (id INT, name TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    db.execute("CREATE INDEX ix ON t (id)")
    db.execute("ANALYZE t")
    result = db.query("SELECT name FROM t WHERE id = 2")
    print(result.rows)            # [('b',)]
    print(db.explain("SELECT ...")) # the physical plan with estimates

Ties together catalog, SQL front-end, rewriter, optimizer and executor,
and exposes the per-query metrics the benchmark harness consumes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..algebra import build_plan
from ..catalog import Catalog, IndexKind, TableInfo
from ..executor import ExecContext, ExecMetrics, run
from ..expr import Literal
from ..obs import (
    ActivityRegistry,
    AutoExplain,
    FeedbackStore,
    InstrumentLevel,
    MetricsRegistry,
    ObsConfig,
    PlanBaselineStore,
    QueryLog,
    QueryLogRecord,
    RequestTrace,
    SearchTrace,
    Span,
    StatementLatency,
    TraceRing,
    Tracer,
    WaitEventStats,
    activate_tracer,
    chrome_trace_events,
    plan_diff,
    plan_fingerprint,
    plan_shape_text,
    q_error,
    register_system_tables,
    statement_fingerprint,
    trace_span,
)
from ..optimizer import CostModel, Planner, PlannerOptions, PlannerStats
from ..physical import PhysicalPlan, walk_plan
from ..sql import (
    AnalyzeStmt,
    BeginStmt,
    CheckpointStmt,
    CommitStmt,
    CreateIndexStmt,
    CreateTableStmt,
    CreateViewStmt,
    DeleteStmt,
    DropTableStmt,
    DropViewStmt,
    ExplainStmt,
    InsertStmt,
    RollbackStmt,
    SelectStmt,
    UpdateStmt,
    parse,
)
from ..qa import faults
from ..wal import (
    RecoveryReport,
    Transaction,
    TxnManager,
    WalRecordType,
    open_wal,
    recover,
    write_checkpoint,
)
from .cache import PlanCache, ResultCache
from .session import Session
from .views import Expansion, ViewDef, ViewExpander
from ..storage import BufferPool, BufferStats, DiskManager, IOStats, Replacement
from ..types import Column, Schema


class EngineError(Exception):
    """Raised for statements the engine cannot execute."""


@dataclass
class QueryResult:
    """Rows plus everything the experiments need to know about the run."""

    rows: List[Tuple[Any, ...]]
    columns: List[str]
    plan: Optional[PhysicalPlan] = None
    io: Optional[IOStats] = None
    buffer: Optional[BufferStats] = None
    exec_metrics: Optional[ExecMetrics] = None
    planner_stats: Optional[PlannerStats] = None
    planning_seconds: float = 0.0
    execution_seconds: float = 0.0
    trace: Optional[Span] = None

    @property
    def rowcount(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> List[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]


class Database:
    """An in-process relational database with a cost-based optimizer."""

    def __init__(
        self,
        buffer_pages: int = 256,
        work_mem_pages: int = 32,
        page_size: int = 4096,
        replacement: Replacement = Replacement.LRU,
        options: Optional[PlannerOptions] = None,
        obs: Optional[ObsConfig] = None,
        batch_size: int = ExecContext.DEFAULT_BATCH_SIZE,
        columnar: bool = False,
        data_dir: Optional[str] = None,
        wal_sync: bool = True,
        mvcc: bool = True,
    ):
        self.disk = DiskManager(page_size)
        self.pool = BufferPool(self.disk, buffer_pages, replacement)
        self.catalog = Catalog(self.pool)
        #: transaction manager: lifecycle, undo, table locks; doubles as
        #: the WAL hook target (writer attached below when durable)
        self.txn = TxnManager()
        self.catalog.txn = self.txn
        self.pool.evict_guard = self.txn.may_evict
        self.pool.write_hook = self.txn.before_page_write
        self.pool.clean_hook = self.txn.page_clean
        #: snapshot-isolated reads (SELECTs run lock-free against a commit-
        #: timestamp read view); ``mvcc=False`` falls back to statement-
        #: scoped shared table locks (readers block on writers)
        self.mvcc = mvcc
        #: the snapshot of the statement currently inside ``_stmt_lock``;
        #: nested internal selects (view materialization, subqueries)
        #: inherit it so one statement reads one consistent view
        self._active_snapshot = None
        self.work_mem_pages = work_mem_pages
        self.batch_size = batch_size
        #: run queries through the columnar batch engine (ColumnBatch
        #: flow, vectorized kernels, zone-map page skipping)
        self.columnar = columnar
        self.options = options or PlannerOptions()
        self.model = CostModel(
            work_mem_pages=work_mem_pages,
            buffer_pages=buffer_pages,
            vector_cpu_factor=0.25 if columnar else 1.0,
        )
        self.views: Dict[str, ViewDef] = {}
        self._live_transients: List[str] = []
        self.obs = obs or ObsConfig()
        self.metrics = MetricsRegistry()
        self.query_log = QueryLog(self.obs.query_log_size)
        self.last_trace: Optional[Span] = None
        #: the most recent request's full trace (id + span tree), kept
        #: regardless of duration; ``last_trace_export()`` renders it
        self.last_request_trace: Optional[RequestTrace] = None
        #: bounded ring of *slow* request traces — captured when
        #: auto_explain is enabled and the request crosses its threshold
        #: (one knob for both capture paths); served by ``sys_stat_traces``
        self.traces = TraceRing(self.obs.trace_ring_size)
        #: per-fingerprint statement latency quantiles (log-bucketed),
        #: surfaced as ``statement_latency_ms`` in the Prometheus export
        self.latency = StatementLatency(
            max_fingerprints=self.obs.latency_fingerprints
        )
        #: plan baselines per normalized statement (plan-change detection)
        self.baselines = PlanBaselineStore()
        #: est-vs-actual cardinality evidence, harvested from executions;
        #: consulted at planning time only when options.use_feedback is set
        self.feedback = FeedbackStore()
        #: the optimizer SearchTrace of the most recent planning pass
        self.last_search: Optional[SearchTrace] = None
        #: cumulative wait-event accounting (io/lock/exec/exchange classes);
        #: attached to the buffer pool so page I/O and lock contention are
        #: timed at the source
        self.waits = WaitEventStats()
        if self.obs.waits:
            self.pool.waits = self.waits
            self.txn.waits = self.waits
        #: in-flight user statements (serves ``sys_stat_activity``)
        self.activity = ActivityRegistry()
        #: slow-statement capture (``auto_explain``-style)
        self.auto_explain = AutoExplain(self.obs.auto_explain)
        #: inter-query caches: physical plans keyed by statement
        #: fingerprint, and (off by default) read-only result rows keyed
        #: by exact SQL; see ``engine.cache``
        self.plan_cache = PlanCache(self.obs.plan_cache_size)
        self.result_cache = ResultCache(self.obs.result_cache_size)
        #: per-table write counters + a global DDL/stats epoch; the
        #: result cache snapshots these to stay invalidation-aware
        self._write_epochs: Dict[str, int] = {}
        self._global_epoch = 0
        #: the engine-wide statement lock: one statement mutates or plans
        #: at a time; lock *waits* (table locks) happen outside it, and
        #: COMMIT's fsync happens after it, so sessions still overlap
        #: usefully (group commit) without a thread-safe executor
        self._stmt_lock = threading.RLock()
        self._session_guard = threading.Lock()
        self._sessions: Dict[int, Session] = {}
        self._next_session_id = 1
        #: the default session behind the plain ``db.execute(sql)`` API
        self._session = self.create_session()
        self.data_dir = data_dir
        self.last_recovery: Optional[RecoveryReport] = None
        self._closed = False
        if self.obs.system_tables:
            register_system_tables(self)
        if data_dir is not None:
            os.makedirs(data_dir, exist_ok=True)
            self.last_recovery = recover(self, data_dir)
            self.txn.writer = open_wal(
                data_dir,
                self.last_recovery.next_lsn,
                waits=self.waits if self.obs.waits else None,
                sync=wal_sync,
            )
            self.txn.set_next_txn_id(self.last_recovery.next_txn_id)

    # -- cache invalidation ------------------------------------------------------------

    def _invalidate_caches(self, reason: str) -> None:
        """Anything that can change what the optimizer would pick — DDL,
        new statistics, a planner-options switch — drops every cached
        plan and result."""
        self._global_epoch += 1
        dropped = self.plan_cache.invalidate(reason)
        dropped += self.result_cache.invalidate(reason)
        if dropped and self.obs.metrics:
            self.metrics.counter("cache_invalidations_total").inc(dropped)

    # -- sessions and transactions -----------------------------------------------------

    def create_session(self) -> Session:
        """Open a new session (one logical connection)."""
        with self._session_guard:
            session_id = self._next_session_id
            self._next_session_id += 1
            session = Session(self, session_id)
            self._sessions[session_id] = session
            return session

    def sessions(self) -> List[Session]:
        with self._session_guard:
            return list(self._sessions.values())

    def _forget_session(self, session: Session) -> None:
        with self._session_guard:
            self._sessions.pop(session.id, None)

    def rollback_session_txn(self, session: Session) -> None:
        """Roll back a session's open explicit transaction, if any."""
        txn = session.txn
        session.txn = None
        if txn is not None:
            self._rollback_txn(txn)

    def _commit_txn(self, txn: Transaction) -> None:
        """COMMIT: make durable, release locks, then publish the buffered
        write epochs so other sessions' cached results go stale only for
        writes that actually committed."""
        with trace_span("txn.commit") as sp:
            sp.add("txn_id", float(txn.id))
            self.txn.commit(txn)
        for key, bumps in txn.pending_epochs.items():
            self._write_epochs[key] = self._write_epochs.get(key, 0) + bumps
        txn.pending_epochs.clear()

    def _rollback_txn(self, txn: Transaction) -> None:
        # undo mutates heaps and indexes, so it runs as a statement
        # (lock ordering is safe: a statement-lock holder never waits on
        # table locks — those are always acquired first)
        with trace_span("txn.rollback") as sp:
            sp.add("txn_id", float(txn.id))
            with self._stmt_lock:
                self.txn.rollback(txn, self.catalog)

    def _begin(self, session: Session) -> QueryResult:
        if session.txn is not None:
            raise EngineError("already in a transaction")
        session.txn = self.txn.begin(session.id, explicit=True)
        return QueryResult(rows=[], columns=[])

    def _commit(self, session: Session) -> QueryResult:
        txn = session.txn
        session.txn = None
        if txn is not None:
            self._commit_txn(txn)
        return QueryResult(rows=[], columns=[])

    def _rollback(self, session: Session) -> QueryResult:
        self.rollback_session_txn(session)
        return QueryResult(rows=[], columns=[])

    # -- statement dispatch ------------------------------------------------------------

    def execute(
        self,
        sql: str,
        session: Optional[Session] = None,
        trace_id: Optional[str] = None,
        tracer: Optional[Tracer] = None,
    ) -> QueryResult:
        """Parse and run one statement of any kind.

        *trace_id* names the request in the trace this statement opens
        (client-supplied distributed tracing; generated when omitted).
        An externally owned *tracer* (the server's per-request root span)
        is used as-is and **not** finalized here — the owner closes its
        root span and calls :meth:`capture_trace`.
        """
        session = session or self._session
        external = tracer is not None
        if tracer is None:
            tracer = self._new_tracer(trace_id)
        # the active tracer lets deep layers (WAL append/fsync, table
        # locks, MVCC) open spans without threading it through signatures
        with activate_tracer(tracer):
            with tracer.span("query"):
                with tracer.span("parse"):
                    stmt = parse(sql)
                if isinstance(stmt, SelectStmt):
                    result = self._run_select(
                        stmt, sql=sql, tracer=tracer, session=session
                    )
                elif isinstance(stmt, ExplainStmt):
                    result = self._explain(stmt, sql, tracer, session)
                elif isinstance(stmt, BeginStmt):
                    result = self._begin(session)
                elif isinstance(stmt, CommitStmt):
                    result = self._commit(session)
                elif isinstance(stmt, RollbackStmt):
                    result = self._rollback(session)
                elif isinstance(stmt, CheckpointStmt):
                    result = self.checkpoint()
                else:
                    result = self._execute_other(stmt, sql, session)
        if not external and tracer.root is not None:
            result.trace = tracer.root
            self.last_trace = tracer.root
            self.capture_trace(tracer, sql, session_id=session.id)
        return result

    def _explain(
        self,
        stmt: ExplainStmt,
        sql: str,
        tracer: Tracer,
        session: Optional[Session] = None,
    ) -> QueryResult:
        """EXPLAIN [(ANALYZE | VERBOSE | SEARCH | DIFF)]: render the plan
        (with actuals when executed), optionally followed by the
        optimizer's search trace, or diffed against the stored baseline."""
        if stmt.diff:
            return self._explain_diff(stmt, sql, tracer)
        collect_search = True if stmt.search else None
        if stmt.analyze:
            inner = self._run_select(
                stmt.inner,
                sql=sql,
                tracer=tracer,
                analyze=True,
                collect_search=collect_search,
                session=session,
            )
            text = inner.plan.pretty(actuals=True)
            text += (
                f"\nplanning: {inner.planning_seconds * 1000:.1f} ms"
                f"\nexecution: {inner.execution_seconds * 1000:.1f} ms, "
                f"{inner.io.reads} reads / {inner.io.writes} writes, "
                f"{inner.rowcount} rows"
            )
            text += self._search_section(stmt)
            return QueryResult(
                rows=[(line,) for line in text.splitlines()],
                columns=["plan"],
                plan=inner.plan,
                io=inner.io,
                buffer=inner.buffer,
                exec_metrics=inner.exec_metrics,
                planner_stats=inner.planner_stats,
                planning_seconds=inner.planning_seconds,
                execution_seconds=inner.execution_seconds,
            )
        start = time.perf_counter()
        with self._stmt_lock:
            before = len(self._live_transients)
            try:
                with tracer.span("plan"):
                    physical, pstats = self.plan_select(
                        stmt.inner, tracer=tracer, collect_search=collect_search
                    )
                text = physical.pretty()
                text += self._search_section(stmt)
            finally:
                self._drop_transients_from(before)
        planning = time.perf_counter() - start
        return QueryResult(
            rows=[(line,) for line in text.splitlines()],
            columns=["plan"],
            plan=physical,
            planner_stats=pstats,
            planning_seconds=planning,
        )

    def _search_section(self, stmt: ExplainStmt) -> str:
        if not stmt.search or self.last_search is None:
            return ""
        return "\n\nSearch:\n" + self.last_search.render(verbose=stmt.verbose)

    def _explain_diff(
        self, stmt: ExplainStmt, sql: str, tracer: Tracer
    ) -> QueryResult:
        """EXPLAIN DIFF: plan the statement (no execution) and diff the
        chosen plan against the stored baseline.  The baseline itself is
        NOT advanced — diffing is a read-only question."""
        start = time.perf_counter()
        with self._stmt_lock:
            before = len(self._live_transients)
            try:
                with tracer.span("plan"):
                    physical, pstats = self.plan_select(
                        stmt.inner, tracer=tracer
                    )
            finally:
                self._drop_transients_from(before)
        planning = time.perf_counter() - start
        baseline = self.baselines.get(statement_fingerprint(sql))
        if baseline is None:
            text = (
                physical.pretty()
                + "\n\n(no stored baseline for this statement yet — "
                "run it once to establish one)"
            )
        else:
            text = plan_diff(
                baseline.plan_shape,
                plan_shape_text(physical),
                baseline.est_cost,
                physical.total_est_cost(),
            )
        return QueryResult(
            rows=[(line,) for line in text.splitlines()],
            columns=["plan"],
            plan=physical,
            planner_stats=pstats,
            planning_seconds=planning,
        )

    def _execute_other(
        self, stmt: Any, sql: str, session: Optional[Session] = None
    ) -> QueryResult:
        """DDL / DML / utility statements (everything but SELECT/EXPLAIN)."""
        session = session or self._session
        if isinstance(stmt, (InsertStmt, DeleteStmt, UpdateStmt)):
            return self._execute_dml(stmt, session, sql=sql)
        if session.txn is not None:
            raise EngineError(
                "DDL and utility statements autocommit and cannot run "
                "inside an explicit transaction"
            )
        txn = self.txn.begin(session.id)
        try:
            for table in self._utility_lock_targets(stmt):
                self.txn.lock_table(txn, table)
            with self.txn.activate(txn), self._stmt_lock:
                result = self._apply_utility(stmt, sql)
                if isinstance(
                    stmt,
                    (
                        CreateTableStmt,
                        CreateIndexStmt,
                        DropTableStmt,
                        CreateViewStmt,
                        DropViewStmt,
                        AnalyzeStmt,
                    ),
                ):
                    self.txn.log_ddl(
                        json.dumps({"sql": sql}).encode("utf-8")
                    )
        except BaseException:
            self._rollback_txn(txn)
            raise
        self._commit_txn(txn)
        return result

    def _execute_dml(
        self, stmt: Any, session: Session, sql: Optional[str] = None
    ) -> QueryResult:
        """INSERT/UPDATE/DELETE under the session's transaction (or an
        implicit autocommitted one).  The table write lock is taken
        *before* the statement lock — lock waits must not block the
        engine — and an implicit COMMIT's fsync happens *after* the
        statement lock is released (group commit batching)."""
        own = session.txn
        txn = own if own is not None else self.txn.begin(session.id)
        start = time.perf_counter()
        dstats = self.disk.stats
        reads0, writes0 = dstats.reads, dstats.writes
        try:
            self.txn.lock_table(txn, stmt.table)
            with self.txn.activate(txn), self._stmt_lock:
                with trace_span("execute") as sp:
                    if isinstance(stmt, InsertStmt):
                        count = self._insert(stmt)
                        kind = "insert"
                        result = QueryResult(rows=[], columns=[])
                    elif isinstance(stmt, DeleteStmt):
                        count = self._delete(stmt)
                        kind = "delete"
                        result = QueryResult(
                            rows=[(count,)], columns=["deleted"]
                        )
                    else:
                        count = self._update(stmt)
                        kind = "update"
                        result = QueryResult(
                            rows=[(count,)], columns=["updated"]
                        )
                    sp.add("rows_modified", float(count))
                key = stmt.table.lower()
                txn.pending_epochs[key] = txn.pending_epochs.get(key, 0) + 1
        except BaseException:
            # statement failure aborts the whole transaction (a partially
            # applied statement cannot be left behind)
            if own is not None:
                session.txn = None
            self._rollback_txn(txn)
            raise
        if own is None:
            self._commit_txn(txn)
        if sql is not None:
            # statement latency as the client saw it: for autocommit DML
            # the elapsed time includes the COMMIT's (group-batched) fsync
            self._record_dml(
                sql,
                kind,
                count,
                session,
                txn,
                time.perf_counter() - start,
                dstats.reads - reads0,
                dstats.writes - writes0,
            )
        return result

    def _record_dml(
        self,
        sql: str,
        kind: str,
        count: int,
        session: Session,
        txn: Transaction,
        elapsed: float,
        reads: int,
        writes: int,
    ) -> None:
        """Feed one finished DML statement into the metrics registry, the
        latency store, and the query log (with session/txn attribution) —
        the write-side twin of :meth:`_record_query`."""
        fingerprint = statement_fingerprint(sql)
        if self.obs.metrics:
            m = self.metrics
            m.counter("dml_statements_total").inc()
            m.counter("rows_modified_total").inc(count)
            m.histogram("dml_execution_ms").observe(elapsed * 1000.0)
            self.latency.observe(fingerprint, elapsed * 1000.0)
        if self.query_log.capacity > 0:
            self.query_log.record(
                QueryLogRecord(
                    sql=sql,
                    fingerprint=fingerprint,
                    est_rows=float(count),
                    actual_rows=count,
                    q_error=1.0,
                    est_cost=0.0,
                    actual_reads=reads,
                    actual_writes=writes,
                    planning_ms=0.0,
                    execution_ms=elapsed * 1000.0,
                    kind=kind,
                    session_id=session.id,
                    txn_id=txn.id,
                )
            )

    def _utility_lock_targets(self, stmt: Any) -> List[str]:
        """Tables a DDL/utility statement must quiesce before running."""
        if isinstance(stmt, (CreateIndexStmt, DropTableStmt)):
            if self.catalog.has_table(stmt.table):
                return [stmt.table]
            return []
        if isinstance(stmt, AnalyzeStmt):
            if stmt.table is None:
                return sorted(info.name for info in self.catalog.tables())
            if self.catalog.has_table(stmt.table):
                return [stmt.table]
        return []

    def _apply_utility(self, stmt: Any, sql: str) -> QueryResult:
        if isinstance(stmt, CreateTableStmt):
            schema = Schema(
                Column(c.name, c.dtype, stmt.table, c.nullable)
                for c in stmt.columns
            )
            self._invalidate_caches("CREATE TABLE")
            self.catalog.create_table(stmt.table, schema)
            for c in stmt.columns:
                if c.primary_key:
                    self.catalog.create_index(
                        f"pk_{stmt.table}_{c.name}",
                        stmt.table,
                        c.name,
                        IndexKind.BTREE,
                        clustered=True,
                    )
            return QueryResult(rows=[], columns=[])
        if isinstance(stmt, CreateIndexStmt):
            kind = IndexKind.BTREE if stmt.using == "btree" else IndexKind.HASH
            self._invalidate_caches("CREATE INDEX")
            self.catalog.create_index(
                stmt.name, stmt.table, stmt.column, kind, stmt.clustered
            )
            return QueryResult(rows=[], columns=[])
        if isinstance(stmt, DropTableStmt):
            self._invalidate_caches("DROP TABLE")
            self.catalog.drop_table(stmt.table)
            # a later table reusing the name must not inherit stale chains
            self.txn.versions.drop_table(stmt.table)
            return QueryResult(rows=[], columns=[])
        if isinstance(stmt, CreateViewStmt):
            key = stmt.name.lower()
            if self.catalog.has_table(stmt.name) or key in self.views:
                raise EngineError(f"name {stmt.name!r} already in use")
            self._invalidate_caches("CREATE VIEW")
            self.views[key] = ViewDef(stmt.name, stmt.select, sql)
            return QueryResult(rows=[], columns=[])
        if isinstance(stmt, DropViewStmt):
            if stmt.name.lower() not in self.views:
                raise EngineError(f"no such view: {stmt.name}")
            self._invalidate_caches("DROP VIEW")
            del self.views[stmt.name.lower()]
            return QueryResult(rows=[], columns=[])
        if isinstance(stmt, AnalyzeStmt):
            self._invalidate_caches("ANALYZE")
            if stmt.table is None:
                self.catalog.analyze_all()
                analyzed = sorted(
                    self.catalog.tables(), key=lambda info: info.name
                )
            else:
                self.catalog.analyze(stmt.table)
                analyzed = [self.catalog.table(stmt.table)]
            # one summary row per table, zone-map coverage included
            rows = []
            for info in analyzed:
                zone_pages, zone_entries = (
                    info.zones.summary() if info.zones is not None else (0, 0)
                )
                rows.append(
                    (
                        info.name,
                        info.stats.num_rows if info.stats else 0,
                        info.num_pages,
                        zone_pages,
                        zone_entries,
                    )
                )
            return QueryResult(
                rows=rows,
                columns=[
                    "table",
                    "rows",
                    "pages",
                    "zone_pages",
                    "zone_entries",
                ],
            )
        raise EngineError(f"unsupported statement {type(stmt).__name__}")

    def query(
        self,
        sql: str,
        session: Optional[Session] = None,
        trace_id: Optional[str] = None,
    ) -> QueryResult:
        """Run a SELECT and return rows + metrics."""
        session = session or self._session
        tracer = self._new_tracer(trace_id)
        with activate_tracer(tracer):
            with tracer.span("query"):
                with tracer.span("parse"):
                    stmt = parse(sql)
                if not isinstance(stmt, SelectStmt):
                    raise EngineError(
                        "query() expects a SELECT; use execute()"
                    )
                result = self._run_select(
                    stmt, sql=sql, tracer=tracer, session=session
                )
        if tracer.root is not None:
            result.trace = tracer.root
            self.last_trace = tracer.root
            self.capture_trace(tracer, sql, session_id=session.id)
        return result

    # -- planning ---------------------------------------------------------------------------

    def plan_select(
        self,
        stmt: SelectStmt,
        tracer: Optional[Tracer] = None,
        collect_search: Optional[bool] = None,
    ) -> Tuple[PhysicalPlan, PlannerStats]:
        """Plan a SELECT.  Views referenced by *stmt* are expanded here; a
        non-mergeable view is materialized into a transient table that the
        statement owning the planning drops when it finishes (``_run_select``,
        ``plan`` and ``explain_stmt`` all clean up after themselves; direct
        callers own the cleanup via :meth:`drop_transients`)."""
        tracer = tracer or Tracer(enabled=False)
        with tracer.span("view_expansion") as span:
            expansion = self._expand_views(stmt)
            if expansion.transient_tables:
                span.add("views_materialized", len(expansion.transient_tables))
        self._live_transients.extend(expansion.transient_tables)
        self._materialize_system_tables(expansion.stmt)
        with tracer.span("decorrelation") as span:
            before = len(self._live_transients)
            stmt = self._decompose_subqueries(expansion.stmt)
            if len(self._live_transients) > before:
                span.add(
                    "subqueries_decorrelated",
                    len(self._live_transients) - before,
                )
        logical = build_plan(stmt, self.catalog)
        if collect_search is None:
            collect_search = self.obs.trace
        search = SearchTrace() if collect_search else None
        planner = Planner(
            self.catalog,
            self.model,
            self.options,
            tracer=tracer,
            feedback=self.feedback,
            search=search,
        )
        physical = planner.plan_logical(logical)
        if search is not None:
            self.last_search = search
        return physical, planner.last_stats or PlannerStats()

    # -- views -------------------------------------------------------------------------

    _live_transients: List[str]

    def _expand_views(self, stmt: SelectStmt) -> Expansion:
        if not self.views:
            return Expansion(stmt)
        expander = ViewExpander(
            views=self.views,
            is_table=self.catalog.has_table,
            materialize=self._materialize_view,
            table_columns=self._table_columns,
            view_output_names=lambda s: [],
        )
        return expander.expand(stmt)

    def _table_columns(self, table: str) -> List[str]:
        if self.catalog.has_table(table):
            return self.catalog.table(table).schema.names()
        view = self.views.get(table.lower())
        if view is None:
            return []
        # output names of a view: derived from its select list
        names: List[str] = []
        for item in view.select.items:
            if item.is_star:
                for ref in list(view.select.from_tables) + [
                    j.table for j in view.select.joins
                ]:
                    for column in self._table_columns(ref.table):
                        if column not in names:
                            names.append(column)
                continue
            if item.alias:
                names.append(item.alias)
            else:
                from ..expr import ColumnRef

                if isinstance(item.expr, ColumnRef):
                    names.append(item.expr.name.split(".")[-1])
                else:
                    names.append(str(item.expr))
        return names

    def _materialize_view(self, inner: SelectStmt, table_name: str) -> str:
        result = self._select(inner)
        schema = Schema(
            Column(column.name, column.dtype, table_name, True)
            for column in result.plan.schema
        )
        self.catalog.create_table(table_name, schema)
        self.catalog.insert_rows(table_name, result.rows)
        self.catalog.analyze(table_name)
        return table_name

    def _materialize_system_tables(self, stmt: SelectStmt) -> None:
        """Snapshot every ``sys_stat_*`` table *stmt* references into a
        transient heap table of the same name (dropped when the statement
        finishes, exactly like a materialized view).

        Materializing — rather than teaching the executor about virtual
        tables — means the planner prices a system table like any small,
        freshly-ANALYZEd table and every SQL feature (filters, joins,
        ORDER BY, aggregation, EXPLAIN) composes with zero special cases.
        The snapshot is taken once, at statement start, so self-joins of a
        system table see one consistent picture.  A user table with the
        same name shadows the provider (``is_system_table`` is False),
        which also makes re-materialization within one statement a no-op.
        """
        catalog = self.catalog
        if not catalog.system_table_names():
            return
        refs = [ref.table for ref in stmt.from_tables]
        refs += [join.table.table for join in stmt.joins]
        for name in refs:
            key = name.lower()
            if not catalog.is_system_table(key):
                continue
            schema, rows = catalog.system_table_rows(key)
            catalog.create_table(key, schema)
            catalog.insert_rows(key, rows)
            catalog.analyze(key)
            self._live_transients.append(key)

    def drop_transients(self) -> None:
        """Drop transient tables left over from planning view queries."""
        self._drop_transients_from(0)

    def _drop_transients_from(self, before: int) -> None:
        """Drop the transients registered past index *before* — the ones
        the current statement created."""
        mine = self._live_transients[before:]
        del self._live_transients[before:]
        for name in mine:
            if self.catalog.has_table(name):
                self.catalog.drop_table(name)

    # -- subquery decomposition (INGRES-style) ----------------------------------------

    def _decompose_subqueries(self, stmt: SelectStmt) -> SelectStmt:
        """Replace uncorrelated subquery predicates with their results.

        The classic decomposition strategy: run each independent inner
        query first, substitute its answer as literals, then optimize the
        (now subquery-free) outer query.  Correlated subqueries are
        rejected (the inner query must plan standalone).
        """
        from dataclasses import replace as dc_replace

        from ..expr import Expr, SubqueryExpr, contains_subquery, map_expr

        def rewrite(expr: Optional[Expr]) -> Optional[Expr]:
            if expr is None or not contains_subquery(expr):
                return expr
            return map_expr(expr, self._substitute_subquery)

        stmt = self._decorrelate(stmt)
        changed = False
        where = rewrite(stmt.where)
        having = rewrite(stmt.having)
        joins = []
        for join in stmt.joins:
            condition = rewrite(join.condition)
            if condition is not join.condition:
                changed = True
                join = dc_replace(join, condition=condition)
            joins.append(join)
        if where is stmt.where and having is stmt.having and not changed:
            return stmt
        out = SelectStmt(
            items=stmt.items,
            from_tables=stmt.from_tables,
            joins=joins,
            where=where,
            group_by=stmt.group_by,
            having=having,
            order_by=stmt.order_by,
            limit=stmt.limit,
            distinct=stmt.distinct,
        )
        return out

    # -- correlated subqueries: semi-join decorrelation -------------------------------

    def _decorrelate(self, stmt: SelectStmt) -> SelectStmt:
        """Rewrite correlated ``IN``/``EXISTS`` conjuncts as semi-joins.

        The classic decorrelation: a top-level-conjunct subquery whose only
        references to the outer query are equality links becomes a join
        against the DISTINCT projection of the inner query over its link
        (and output) columns.  The inner query is materialized into a
        transient table first (decomposition), so the optimizer then sees a
        plain join.

        Unsupported shapes (negated forms, non-equality correlation,
        correlated aggregates, subqueries under OR) are left alone and fail
        later with a clear error if genuinely correlated.
        """
        from ..expr import ColumnRef, SubqueryExpr, eq, split_conjuncts
        from ..sql.ast import TableRef

        if stmt.where is None:
            return stmt
        conjuncts = split_conjuncts(stmt.where)
        if not any(isinstance(c, SubqueryExpr) for c in conjuncts):
            return stmt

        outer_bindings = {
            ref.binding: ref.table
            for ref in list(stmt.from_tables) + [j.table for j in stmt.joins]
        }
        out_conjuncts: List[Any] = []
        extra_tables: List[TableRef] = []
        changed = False
        for conjunct in conjuncts:
            replacement = None
            if (
                isinstance(conjunct, SubqueryExpr)
                and not conjunct.negated
                and conjunct.kind in ("in", "exists")
            ):
                replacement = self._decorrelate_one(
                    conjunct, outer_bindings, extra_tables,
                    len(extra_tables),
                )
            if replacement is None:
                out_conjuncts.append(conjunct)
            else:
                out_conjuncts.extend(replacement)
                changed = True
        if not changed:
            return stmt
        from ..expr import conjoin

        return SelectStmt(
            items=stmt.items,
            from_tables=list(stmt.from_tables) + extra_tables,
            joins=stmt.joins,
            where=conjoin(out_conjuncts),
            group_by=stmt.group_by,
            having=stmt.having,
            order_by=stmt.order_by,
            limit=stmt.limit,
            distinct=stmt.distinct,
        )

    def _decorrelate_one(
        self,
        sub,
        outer_bindings: Dict[str, str],
        extra_tables: List[Any],
        counter: int,
    ) -> Optional[List[Any]]:
        """Try to turn one correlated subquery conjunct into join conjuncts
        plus a transient FROM entry.  Returns None when not applicable
        (including the uncorrelated case, which the literal-substitution
        path handles better)."""
        from ..expr import (
            ColEqCol,
            ColumnRef,
            classify_conjunct,
            conjoin,
            eq,
            referenced_columns,
            split_conjuncts,
        )
        from ..sql.ast import SelectItem, TableRef

        inner: SelectStmt = sub.payload
        if (
            inner.group_by
            or inner.having is not None
            or inner.order_by
            or inner.limit is not None
        ):
            return None
        if sub.kind == "in" and len(inner.items) != 1:
            return None
        inner_refs = list(inner.from_tables) + [j.table for j in inner.joins]
        inner_columns: Dict[str, int] = {}
        for ref in inner_refs:
            for column in self._table_columns(ref.table):
                inner_columns[column] = inner_columns.get(column, 0) + 1
        inner_bindings = {ref.binding for ref in inner_refs}

        def side_of(name: str) -> Optional[str]:
            if "." in name:
                qualifier = name.split(".", 1)[0]
                if qualifier in inner_bindings:
                    return "inner"
                if qualifier in outer_bindings:
                    return "outer"
                return None
            if inner_columns.get(name, 0) == 1:
                return "inner"
            if inner_columns.get(name, 0) > 1:
                return None  # ambiguous inside the subquery
            for table in outer_bindings.values():
                if name in self._table_columns(table):
                    return "outer"
            return None

        pure_inner: List[Any] = []
        links: List[Any] = []  # (inner ColumnRef, outer ColumnRef)
        for conjunct in split_conjuncts(inner.where):
            refs = referenced_columns(conjunct)
            sides = {side_of(name) for name in refs}
            if None in sides:
                return None
            if sides <= {"inner"}:
                pure_inner.append(conjunct)
                continue
            classified = classify_conjunct(conjunct)
            if not isinstance(classified, ColEqCol):
                return None  # non-equality correlation: bail
            left_side = side_of(classified.left)
            right_side = side_of(classified.right)
            if {left_side, right_side} != {"inner", "outer"}:
                return None
            inner_name, outer_name = (
                (classified.left, classified.right)
                if left_side == "inner"
                else (classified.right, classified.left)
            )
            links.append((ColumnRef(inner_name), ColumnRef(outer_name)))
        if not links:
            return None  # uncorrelated: let literal substitution handle it

        # Build the inner DISTINCT projection over output + link columns.
        items: List[SelectItem] = []
        if sub.kind == "in":
            items.append(SelectItem(inner.items[0].expr, "__c0"))
        for i, (inner_col, _) in enumerate(links):
            items.append(SelectItem(inner_col, f"__l{i}"))
        derived = SelectStmt(
            items=items,
            from_tables=list(inner.from_tables),
            joins=list(inner.joins),
            where=conjoin(pure_inner),
            distinct=True,
        )
        alias = f"__dq{counter}_{len(self._live_transients)}"
        table_name = self._materialize_view(derived, f"__decorr_{alias}")
        self._live_transients.append(table_name)
        extra_tables.append(TableRef(table_name, alias))

        conjuncts_out: List[Any] = []
        if sub.kind == "in":
            conjuncts_out.append(eq(sub.operand, ColumnRef(f"{alias}.__c0")))
        for i, (_, outer_col) in enumerate(links):
            conjuncts_out.append(eq(ColumnRef(f"{alias}.__l{i}"), outer_col))
        return conjuncts_out

    def _substitute_subquery(self, expr):
        from ..expr import InList, Literal, SubqueryExpr

        if not isinstance(expr, SubqueryExpr):
            return expr
        inner: SelectStmt = expr.payload
        try:
            result = self._select(inner)
        except Exception as exc:
            raise EngineError(
                "subquery failed (correlated subqueries are not supported: "
                f"the inner query must run standalone): {exc}"
            ) from exc
        if expr.kind == "exists":
            return Literal(bool(result.rows) != expr.negated)
        if expr.kind == "scalar":
            if len(result.columns) != 1:
                raise EngineError("scalar subquery must return one column")
            if len(result.rows) > 1:
                raise EngineError("scalar subquery returned more than one row")
            value = result.rows[0][0] if result.rows else None
            return Literal(value)
        # 'in'
        if len(result.columns) != 1:
            raise EngineError("IN subquery must return exactly one column")
        values = {row[0] for row in result.rows if row[0] is not None}
        had_null = any(row[0] is None for row in result.rows)
        if not values and not had_null:
            return Literal(expr.negated)  # IN () = FALSE, NOT IN () = TRUE
        items = tuple(Literal(v) for v in sorted(values, key=repr))
        if had_null:
            items = items + (Literal(None),)
        return InList(expr.operand, items, expr.negated)

    def plan(self, sql: str) -> PhysicalPlan:
        stmt = parse(sql)
        if isinstance(stmt, ExplainStmt):
            stmt = stmt.inner
        if not isinstance(stmt, SelectStmt):
            raise EngineError("plan() expects a SELECT")
        before = len(self._live_transients)
        try:
            return self.plan_select(stmt)[0]
        finally:
            self._drop_transients_from(before)

    def explain(self, sql: str) -> str:
        return self.plan(sql).pretty()

    def explain_stmt(self, stmt: SelectStmt) -> str:
        before = len(self._live_transients)
        try:
            return self.plan_select(stmt)[0].pretty()
        finally:
            self._drop_transients_from(before)

    # -- execution ---------------------------------------------------------------------------

    def run_plan(
        self,
        physical: PhysicalPlan,
        cold: bool = False,
        analyze: bool = False,
        activity: Optional[Any] = None,
        snapshot: Optional[Any] = None,
    ) -> QueryResult:
        """Execute an already-built physical plan, measuring real I/O.

        ``cold=True`` clears the buffer pool first so the run pays full
        page-fetch costs (what the experiments usually want).
        ``analyze=True`` forces FULL instrumentation (per-operator timing
        and attributed buffer/disk counters) regardless of the configured
        default level; an enabled ``auto_explain`` with ``analyze=True``
        (its default) forces the same, so captures carry per-node timing —
        the trade PostgreSQL's ``auto_explain.log_analyze`` makes.
        """
        if cold:
            self.pool.clear()
        before_io = self.disk.stats.snapshot()
        before_buf = self.pool.stats.snapshot()
        if analyze or (
            self.auto_explain.enabled and self.auto_explain.config.analyze
        ):
            level = InstrumentLevel.FULL
        else:
            level = self.obs.instrument
        ctx = ExecContext(
            self.pool,
            self.work_mem_pages,
            instrument=level,
            batch_size=self.batch_size,
            activity=activity,
            columnar=self.columnar,
            snapshot=snapshot if snapshot is not None else self._active_snapshot,
        )
        start = time.perf_counter()
        rows = run(physical, ctx)
        elapsed = time.perf_counter() - start
        return QueryResult(
            rows=rows,
            columns=physical.schema.names(),
            plan=physical,
            io=self.disk.stats.delta(before_io),
            buffer=self.pool.stats.delta(before_buf),
            exec_metrics=ctx.metrics,
            execution_seconds=elapsed,
        )

    def _new_tracer(self, trace_id: Optional[str] = None) -> Tracer:
        return Tracer(enabled=self.obs.trace, trace_id=trace_id)

    # -- request traces -----------------------------------------------------------------

    def capture_trace(
        self,
        tracer: Tracer,
        sql: str,
        session_id: int = 0,
    ) -> Optional[RequestTrace]:
        """Wrap a finished tracer into a :class:`RequestTrace`.

        Always remembered as ``last_request_trace``; additionally pushed
        into the slow-trace ring when auto_explain is enabled and the
        request crossed its ``threshold_ms`` (the same knob that gates
        slow-plan capture — one definition of "slow").
        """
        if not tracer.enabled or tracer.root is None:
            return None
        trace = RequestTrace(
            tracer.trace_id, sql, tracer.root, session_id=session_id
        )
        self.last_request_trace = trace
        if (
            self.auto_explain.enabled
            and trace.duration_ms >= self.auto_explain.config.threshold_ms
        ):
            self.traces.record(trace)
            if self.obs.metrics:
                self.metrics.counter("traces_captured_total").inc()
                self.metrics.counter("trace_spans_total").inc(
                    trace.span_count()
                )
        return trace

    def last_trace_export(self, path: Optional[str] = None) -> str:
        """The most recent request trace as Chrome trace-event JSON —
        load the written file in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``.  Returns the JSON text; writes *path* when
        given (the REPL's ``\\trace export FILE``)."""
        trace = self.last_request_trace
        if trace is None:
            raise EngineError("no request trace captured yet")
        text = json.dumps(chrome_trace_events(trace), indent=1)
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text

    def _select(self, stmt: SelectStmt) -> QueryResult:
        """Plan + run a SELECT under its own trace (internal entry point:
        view materialization, subquery substitution, tests)."""
        tracer = self._new_tracer()
        with tracer.span("query"):
            result = self._run_select(stmt, tracer=tracer)
        if tracer.root is not None:
            result.trace = tracer.root
            self.last_trace = tracer.root
        return result

    @staticmethod
    def _has_subqueries(stmt: SelectStmt) -> bool:
        from ..expr import contains_subquery

        exprs = [item.expr for item in stmt.items if item.expr is not None]
        exprs += [j.condition for j in stmt.joins if j.condition is not None]
        exprs += list(stmt.group_by)
        exprs += [o.expr for o in stmt.order_by]
        if stmt.where is not None:
            exprs.append(stmt.where)
        if stmt.having is not None:
            exprs.append(stmt.having)
        return any(contains_subquery(e) for e in exprs)

    @staticmethod
    def _plan_tables(physical: PhysicalPlan) -> set:
        """Lower-cased names of every base table the plan reads."""
        names = set()
        for node in walk_plan(physical):
            table = getattr(node, "table", None)
            if table is not None:
                names.add(table.name.lower())
        return names

    def _run_select(
        self,
        stmt: SelectStmt,
        sql: Optional[str] = None,
        tracer: Optional[Tracer] = None,
        analyze: bool = False,
        collect_search: Optional[bool] = None,
        session: Optional[Session] = None,
    ) -> QueryResult:
        tracer = tracer or Tracer(enabled=False)
        start = time.perf_counter()
        if not self.mvcc:
            # Legacy isolation: top-level statements take statement-scoped
            # shared table locks before the statement lock, so they never
            # read uncommitted rows — at the price of blocking on writers.
            acquired: List[str] = []
            if session is not None:
                names = [ref.table for ref in stmt.from_tables]
                names += [join.table.table for join in stmt.joins]
                acquired = self.txn.lock_tables_shared(
                    [n for n in names if self.catalog.has_table(n)],
                    txn=session.txn,
                )
            try:
                with self._stmt_lock:
                    return self._run_select_locked(
                        stmt, sql, tracer, analyze, collect_search,
                        session, start, None,
                    )
            finally:
                self.txn.unlock_shared(acquired)
        # MVCC: top-level statements read through a commit-timestamp
        # snapshot instead of locking — they never block on writers and
        # never see uncommitted rows.  Inside an explicit transaction the
        # snapshot is pinned at the first SELECT and reused until COMMIT/
        # ROLLBACK (repeatable reads, released by TxnManager._finish);
        # autocommit SELECTs take a statement snapshot (read committed).
        snapshot = None
        release = False
        if session is not None:
            txn = session.txn
            if txn is not None:
                if txn.snapshot is None:
                    with tracer.span("mvcc.acquire") as sp:
                        txn.snapshot = self.txn.versions.acquire(txn.id)
                        sp.set_attr("scope", "transaction")
                        sp.add("snapshot_ts", float(txn.snapshot.ts))
                snapshot = txn.snapshot
            else:
                with tracer.span("mvcc.acquire") as sp:
                    snapshot = self.txn.versions.acquire(0)
                    sp.set_attr("scope", "statement")
                    sp.add("snapshot_ts", float(snapshot.ts))
                release = True
        try:
            with self._stmt_lock:
                return self._run_select_locked(
                    stmt, sql, tracer, analyze, collect_search,
                    session, start, snapshot,
                )
        finally:
            if release:
                with tracer.span("mvcc.release"):
                    self.txn.versions.release(snapshot)

    def _run_select_locked(
        self,
        stmt: SelectStmt,
        sql: Optional[str],
        tracer: Tracer,
        analyze: bool,
        collect_search: Optional[bool],
        session: Optional[Session],
        start: float,
        snapshot: Optional[Any] = None,
    ) -> QueryResult:
        # Nested internal selects (view materialization, subquery
        # decomposition) arrive with snapshot=None and inherit the outer
        # statement's view, so one statement reads one consistent state.
        if snapshot is None:
            snapshot = self._active_snapshot
        prev_snapshot = self._active_snapshot
        self._active_snapshot = snapshot
        try:
            return self._run_select_impl(
                stmt, sql, tracer, analyze, collect_search,
                session, start, snapshot,
            )
        finally:
            self._active_snapshot = prev_snapshot

    def _run_select_impl(
        self,
        stmt: SelectStmt,
        sql: Optional[str],
        tracer: Tracer,
        analyze: bool,
        collect_search: Optional[bool],
        session: Optional[Session],
        start: float,
        snapshot: Optional[Any],
    ) -> QueryResult:
        before_transients = len(self._live_transients)
        # Cacheable = user-issued, not EXPLAIN ANALYZE (which must show a
        # cold plan), feedback off (feedback-corrected plans drift between
        # executions), and no subqueries (decomposition bakes subquery
        # *results* into the plan as literals).
        cacheable = (
            sql is not None
            and not analyze
            and not self.options.use_feedback
            and not self._has_subqueries(stmt)
        )
        # A session with pending (uncommitted) writes bypasses the result
        # cache: entries reflect committed state only, so serving one
        # could hide the session's own changes — while evicting it (the
        # cache's staleness reaction) would wrongly punish everyone else
        # for writes that may yet roll back.
        txn = session.txn if session is not None else None
        # A snapshot older than the latest commit must also bypass: cache
        # entries reflect the *newest* committed state, which this reader's
        # frozen view is not allowed to observe yet.
        stale_snapshot = (
            snapshot is not None
            and snapshot.ts != self.txn.versions.last_commit_ts
        )
        bypass_result_cache = (
            txn is not None and bool(txn.pending_epochs)
        ) or stale_snapshot
        if cacheable and self.obs.result_cache and not bypass_result_cache:
            hit = self.result_cache.lookup(
                sql, self._global_epoch, self._write_epochs
            )
            if hit is not None:
                if self.obs.metrics:
                    self.metrics.counter("cache_result_hits_total").inc()
                result = QueryResult(
                    rows=list(hit.rows),
                    columns=list(hit.columns),
                    plan=hit.plan,
                    planner_stats=PlannerStats(),
                    planning_seconds=time.perf_counter() - start,
                )
                self._record_query(
                    sql, hit.plan, result, result_cache_hit=True,
                    session=session,
                )
                return result
            if self.obs.metrics:
                self.metrics.counter("cache_result_misses_total").inc()
        cached_plan = None
        fingerprint = options_key = None
        if cacheable and self.obs.plan_cache:
            fingerprint = statement_fingerprint(sql)
            options_key = repr(self.options)
            cached_plan = self.plan_cache.lookup(fingerprint, sql, options_key)
            if self.obs.metrics:
                self.metrics.counter(
                    "cache_plan_hits_total"
                    if cached_plan is not None
                    else "cache_plan_misses_total"
                ).inc()
        plan_cache_hit = cached_plan is not None
        entry = (
            self.activity.begin(
                sql, session_id=session.id if session is not None else 0
            )
            if sql is not None
            else None
        )
        if entry is not None and snapshot is not None:
            entry.snapshot_ts = snapshot.ts
            entry.snapshot_acquired = snapshot.acquired_at
        made_transients = False
        try:
            if cached_plan is not None:
                physical, pstats = cached_plan, PlannerStats()
            else:
                with tracer.span("plan"):
                    physical, pstats = self.plan_select(
                        stmt, tracer=tracer, collect_search=collect_search
                    )
                # plans that lean on per-statement transients (materialized
                # views, system tables) die with those transients — never
                # cache them
                made_transients = (
                    len(self._live_transients) > before_transients
                )
                if (
                    cacheable
                    and self.obs.plan_cache
                    and not made_transients
                ):
                    self.plan_cache.store(
                        fingerprint, sql, options_key, physical
                    )
            planning = time.perf_counter() - start
            if entry is not None:
                entry.phase = "executing"
            waits0 = self.waits.snapshot() if self.obs.waits else None
            with tracer.span("execute"):
                result = self.run_plan(
                    physical, analyze=analyze, activity=entry,
                    snapshot=snapshot,
                )
        finally:
            # transient tables created for THIS statement's views
            self._drop_transients_from(before_transients)
            if entry is not None:
                self.activity.finish(entry)
        if waits0 is not None:
            # exec.cpu = wall execution time minus the blocked time that
            # accrued during it, so cpu + io + lock (+ exchange) adds back
            # up to measured execution time
            blocked = sum(
                seconds
                for event, (_, seconds) in self.waits.delta(waits0).items()
                if not event.startswith("exec.")
            )
            self.waits.record(
                "exec.cpu", max(0.0, result.execution_seconds - blocked)
            )
        result.planner_stats = pstats
        result.planning_seconds = planning
        if (
            cacheable
            and self.obs.result_cache
            and not made_transients
            and result.rowcount <= self.obs.result_cache_max_rows
            # re-checked after execution: a commit landing mid-query
            # makes these rows a stale view the cache must not publish
            and not (
                snapshot is not None
                and snapshot.ts != self.txn.versions.last_commit_ts
            )
        ):
            tables = self._plan_tables(physical)
            # never publish rows that include this session's uncommitted
            # writes — a rollback would leave the entry poisoned for
            # everyone else
            dirty = set(txn.pending_epochs) if txn is not None else set()
            if not (tables & dirty):
                self.result_cache.store(
                    sql,
                    result.rows,
                    result.columns,
                    physical,
                    {name: self._write_epochs.get(name, 0) for name in tables},
                    self._global_epoch,
                )
        self._record_query(
            sql, physical, result, plan_cache_hit=plan_cache_hit,
            session=session,
        )
        self._maybe_auto_explain(sql, physical, result)
        return result

    def _record_query(
        self,
        sql: Optional[str],
        physical: PhysicalPlan,
        result: QueryResult,
        plan_cache_hit: bool = False,
        result_cache_hit: bool = False,
        session: Optional[Session] = None,
    ) -> None:
        """Feed one finished SELECT into the metrics registry and (for
        user-issued statements, ``sql is not None``) the query log.

        A result-cache hit never executed, so its stale plan actuals are
        kept out of the feedback store and the baseline observer."""
        if self.obs.metrics:
            m = self.metrics
            m.counter("queries_total").inc()
            m.histogram("planning_ms").observe(result.planning_seconds * 1000.0)
            m.histogram("execution_ms").observe(
                result.execution_seconds * 1000.0
            )
            m.counter("rows_returned_total").inc(result.rowcount)
            if result.io is not None:
                m.counter("pages_read_total").inc(result.io.reads)
                m.counter("pages_written_total").inc(result.io.writes)
            if result.exec_metrics is not None:
                m.counter("spills_total").inc(result.exec_metrics.spills)
                m.counter("temp_files_total").inc(
                    result.exec_metrics.temp_files
                )
                m.counter("pages_skipped_total").inc(
                    result.exec_metrics.pages_skipped
                )
                if result.exec_metrics.parallel_regions:
                    m.counter("parallel_queries_total").inc()
                    m.counter("parallel_workers_total").inc(
                        result.exec_metrics.parallel_workers
                    )
            m.gauge("buffer_hit_ratio").set(self.pool.stats.hit_rate)
            if sql is not None:
                self.latency.observe(
                    statement_fingerprint(sql),
                    (result.planning_seconds + result.execution_seconds)
                    * 1000.0,
                )
        if self.obs.feedback and not result_cache_hit:
            self._harvest_feedback(physical)
        fingerprint = plan_fingerprint(physical)
        est_cost = physical.total_est_cost()
        plan_changed = False
        cost_delta = 0.0
        if self.obs.baselines and sql is not None and not result_cache_hit:
            change = self.baselines.observe(
                statement_fingerprint(sql),
                sql,
                fingerprint,
                est_cost,
                plan_shape_text(physical),
                result.execution_seconds * 1000.0,
            )
            if change is not None:
                plan_changed = True
                cost_delta = change.cost_delta
                if self.obs.metrics:
                    self.metrics.counter("plan_changes_total").inc()
                    if change.is_regression:
                        self.metrics.counter("plan_regressions_total").inc()
        if sql is not None and self.query_log.capacity > 0:
            self.query_log.record(
                QueryLogRecord(
                    sql=sql,
                    fingerprint=fingerprint,
                    est_rows=physical.est_rows,
                    actual_rows=result.rowcount,
                    q_error=q_error(physical.est_rows, float(result.rowcount)),
                    est_cost=est_cost,
                    actual_reads=result.io.reads if result.io else 0,
                    actual_writes=result.io.writes if result.io else 0,
                    planning_ms=result.planning_seconds * 1000.0,
                    execution_ms=result.execution_seconds * 1000.0,
                    spills=(
                        result.exec_metrics.spills if result.exec_metrics else 0
                    ),
                    temp_files=(
                        result.exec_metrics.temp_files
                        if result.exec_metrics
                        else 0
                    ),
                    parallel_workers=(
                        result.exec_metrics.parallel_workers
                        if result.exec_metrics
                        else 0
                    ),
                    plan_changed=plan_changed,
                    baseline_cost_delta=cost_delta,
                    buffer_hits=result.buffer.hits if result.buffer else 0,
                    plan_cache_hit=plan_cache_hit,
                    result_cache_hit=result_cache_hit,
                    kind="select",
                    session_id=session.id if session is not None else 0,
                    txn_id=(
                        session.txn.id
                        if session is not None and session.txn is not None
                        else 0
                    ),
                )
            )

    def _maybe_auto_explain(
        self, sql: Optional[str], physical: PhysicalPlan, result: QueryResult
    ) -> None:
        """Capture user statements that crossed the auto_explain threshold."""
        if sql is None or not self.auto_explain.enabled:
            return
        search_summary = None
        if self.last_search is not None and len(self.last_search):
            search_summary = self.last_search.render(top=3)
        captured = self.auto_explain.maybe_capture(
            sql=sql,
            execution_ms=result.execution_seconds * 1000.0,
            planning_ms=result.planning_seconds * 1000.0,
            rows=result.rowcount,
            plan_text=physical.pretty(actuals=True),
            reads=result.io.reads if result.io else 0,
            writes=result.io.writes if result.io else 0,
            search_summary=search_summary,
        )
        if captured is not None and self.obs.metrics:
            self.metrics.counter("slow_queries_captured_total").inc()

    def _harvest_feedback(self, physical: PhysicalPlan) -> None:
        """Fold this execution's per-node actuals into the feedback store.

        Plans under a LIMIT are skipped entirely: early termination leaves
        actuals that reflect the cutoff, not the data, and learning from
        them would poison the corrections.
        """
        from ..physical import PLimit, walk_plan

        if any(isinstance(node, PLimit) for node in walk_plan(physical)):
            return
        self.feedback.harvest(physical)

    def metrics_snapshot(self, format: str = "json") -> Any:
        """Process-wide observability snapshot: registry instruments plus
        the storage layer's cumulative counters.

        ``format="json"`` (default) returns nested plain dicts;
        ``format="prom"`` returns Prometheus text exposition (the storage
        counters render as gauges alongside the registry instruments).
        """
        if format == "prom":
            bstats, dstats = self.pool.stats, self.disk.stats
            extras = {
                "buffer_pool_hits": float(bstats.hits),
                "buffer_pool_misses": float(bstats.misses),
                "buffer_pool_evictions": float(bstats.evictions),
                "buffer_pool_dirty_writebacks": float(bstats.dirty_writebacks),
                "buffer_pool_hit_rate": bstats.hit_rate,
                "disk_reads": float(dstats.reads),
                "disk_writes": float(dstats.writes),
                "disk_seq_reads": float(dstats.seq_reads),
                "disk_allocations": float(dstats.allocations),
                "query_log_entries": float(len(self.query_log)),
                "feedback_entries": float(len(self.feedback)),
                "plan_baselines": float(len(self.baselines)),
                "wait_events_total": float(len(self.waits)),
                "slow_query_captures": float(self.auto_explain.captured_total),
            }
            versions = self.txn.versions
            extras.update(
                {
                    "mvcc_last_commit_ts": float(versions.last_commit_ts),
                    "mvcc_active_snapshots": float(
                        versions.active_snapshots()
                    ),
                    "mvcc_live_versions": float(versions.live_versions()),
                    "mvcc_versions_recorded": float(
                        versions.versions_recorded
                    ),
                    "mvcc_versions_pruned": float(versions.versions_pruned),
                    "mvcc_snapshots_taken": float(versions.snapshots_taken),
                }
            )
            # one pair of series per wait event, dots flattened for the
            # exposition grammar (io.read -> wait_io_read_*)
            for event, count, total_ms, _ in self.waits.rows():
                flat = event.replace(".", "_")
                extras[f"wait_{flat}_count"] = float(count)
                extras[f"wait_{flat}_seconds"] = total_ms / 1000.0
            extras["statement_latency_fingerprints"] = float(
                len(self.latency)
            )
            extras["slow_traces_captured"] = float(self.traces.captured)
            # per-fingerprint latency quantiles as one labeled family;
            # sorted label bodies keep the exposition byte-stable
            labeled = []
            quantiles = self.latency.quantiles()
            if quantiles:
                labeled.append(
                    (
                        "statement_latency_ms",
                        "gauge",
                        [
                            (
                                f'fingerprint="{fp}",quantile="{q}"',
                                value,
                            )
                            for fp, q, value in quantiles
                        ],
                    )
                )
            return self.metrics.render_prometheus(
                extras=extras, labeled=labeled
            )
        if format != "json":
            raise EngineError(f"unknown metrics format {format!r}")
        snap: Dict[str, Any] = self.metrics.snapshot()
        bstats = self.pool.stats
        snap["buffer_pool"] = {
            "hits": bstats.hits,
            "misses": bstats.misses,
            "evictions": bstats.evictions,
            "dirty_writebacks": bstats.dirty_writebacks,
            "hit_rate": bstats.hit_rate,
        }
        dstats = self.disk.stats
        snap["disk"] = {
            "reads": dstats.reads,
            "writes": dstats.writes,
            "seq_reads": dstats.seq_reads,
            "allocations": dstats.allocations,
        }
        snap["query_log_entries"] = len(self.query_log)
        versions = self.txn.versions
        snap["mvcc"] = {
            "last_commit_ts": versions.last_commit_ts,
            "active_snapshots": versions.active_snapshots(),
            "oldest_snapshot_ts": versions.oldest_snapshot_ts(),
            "live_versions": versions.live_versions(),
            "versions_recorded": versions.versions_recorded,
            "versions_pruned": versions.versions_pruned,
            "snapshots_taken": versions.snapshots_taken,
        }
        snap["waits"] = self.waits.as_dict()
        snap["auto_explain"] = {
            "enabled": self.auto_explain.enabled,
            "captured_total": self.auto_explain.captured_total,
            "entries": len(self.auto_explain),
        }
        snap["traces"] = {
            "captured_total": self.traces.captured,
            "entries": len(self.traces.entries()),
            "last_trace_id": (
                self.last_request_trace.trace_id
                if self.last_request_trace is not None
                else None
            ),
        }
        snap["statement_latency"] = self.latency.snapshot()
        return snap

    def _insert(self, stmt: InsertStmt) -> int:
        info = self.catalog.table(stmt.table)
        rows = []
        for value_row in stmt.rows:
            literals: List[Any] = []
            for expr in value_row:
                from ..expr import fold_constants

                folded = fold_constants(expr)
                if not isinstance(folded, Literal):
                    raise EngineError(
                        f"INSERT values must be constants, got {expr}"
                    )
                literals.append(folded.value)
            if stmt.columns is None:
                rows.append(tuple(literals))
            else:
                by_name = dict(zip(stmt.columns, literals))
                full = []
                for column in info.schema:
                    full.append(by_name.pop(column.name, None))
                if by_name:
                    raise EngineError(
                        f"unknown INSERT columns: {sorted(by_name)}"
                    )
                rows.append(tuple(full))
        return self.catalog.insert_rows(stmt.table, rows)

    def _matching_rids(self, info: TableInfo, where) -> List[Tuple[Any, Any]]:
        """(rid, row) pairs matching a WHERE clause (full scan; fine for the
        DML volumes this engine targets)."""
        from ..expr import compile_predicate

        if where is None:
            return list(info.heap.scan())
        schema = info.schema
        predicate = compile_predicate(where, schema)
        return [(rid, row) for rid, row in info.heap.scan() if predicate(row)]

    def _delete(self, stmt: DeleteStmt) -> int:
        info = self.catalog.table(stmt.table)
        victims = self._matching_rids(info, stmt.where)
        for rid, row in victims:
            info.heap.delete(rid)
            for index in info.indexes.values():
                value = self._index_key_of(info, row, index)
                if value is None and index.kind is IndexKind.HASH:
                    continue
                index.structure.delete(value, rid)
        return len(victims)

    @staticmethod
    def _index_key_of(info: TableInfo, row, index) -> Any:
        positions = [info.schema.index_of(c) for c in index.columns]
        if len(positions) == 1:
            return row[positions[0]]
        return tuple(row[p] for p in positions)

    def _update(self, stmt: UpdateStmt) -> int:
        from ..expr import compile_expr

        info = self.catalog.table(stmt.table)
        schema = info.schema
        positions = []
        setters = []
        for column, expr in stmt.assignments:
            positions.append(schema.index_of(column))
            setters.append(compile_expr(expr, schema))
        victims = self._matching_rids(info, stmt.where)
        for rid, row in victims:
            new_row = list(row)
            for pos, setter in zip(positions, setters):
                new_row[pos] = setter(row)
            new_rid = info.heap.update(rid, tuple(new_row))
            stored = info.heap.fetch(new_rid)
            if info.zones is not None:
                info.zones.widen(new_rid[0], stored)
            for index in info.indexes.values():
                old_value = self._index_key_of(info, row, index)
                new_value = self._index_key_of(info, stored, index)
                if old_value == new_value and new_rid == rid:
                    continue
                if not (old_value is None and index.kind is IndexKind.HASH):
                    index.structure.delete(old_value, rid)
                if not (new_value is None and index.kind is IndexKind.HASH):
                    index.structure.insert(new_value, new_rid)
        return len(victims)

    # -- durability ---------------------------------------------------------------------------

    def checkpoint(self) -> QueryResult:
        """Fuzzy checkpoint: snapshot the page store and trim the WAL
        without quiescing writers.

        No table locks are taken — transactions stay open across the
        checkpoint.  Under the statement lock (so no heap mutation
        interleaves; COMMITs still proceed, they only touch the WAL):

        1. log a ``CHECKPOINT_BEGIN`` record carrying the active-
           transaction table and the dirty-page table (page -> recLSN);
        2. write back every *committed*-dirty page — pages dirtied by an
           active transaction are skipped (no-steal: uncommitted bytes
           never reach disk), so their on-disk snapshot images are stale;
        3. ``redo_lsn`` = the minimum recLSN over pages still dirty — no
           record below it is needed to rebuild any page, every record at
           or above it is replayed idempotently on recovery;
        4. snapshot the page store, stamp ``redo_lsn`` into the meta,
           drop WAL records below ``redo_lsn``, and log ``CHECKPOINT_END``.

        Recovery redoes committed work from ``redo_lsn`` against the
        (partly stale, partly ahead) snapshot images; replay is
        idempotent, so images that already contain a suffix record
        converge instead of corrupting.
        """
        if self.data_dir is None:
            raise EngineError(
                "CHECKPOINT requires a database opened with data_dir"
            )
        writer = self.txn.writer
        with self._stmt_lock:
            att = self.txn.active_txn_ids()
            dpt = self.txn.dirty_page_table()
            payload = json.dumps(
                {
                    "active_txns": att,
                    "dirty_pages": {
                        f"{pid[0]}:{pid[1]}": rec for pid, rec in dpt.items()
                    },
                }
            ).encode("utf-8")
            with trace_span("checkpoint.begin") as sp:
                sp.add("active_txns", float(len(att)))
                action = faults.FAILPOINTS.hit("checkpoint.begin")
                begin_lsn = writer.append(
                    WalRecordType.CHECKPOINT_BEGIN, 0, payload=payload
                )
                writer.flush_to(begin_lsn)
                if action is not None:
                    faults.crash()
            flushed = 0
            with trace_span("checkpoint.flush") as sp:
                for pid in self.pool.dirty_pages():
                    if not self.txn.may_evict(pid):
                        continue  # no-steal: an active txn owns this page
                    action = faults.FAILPOINTS.hit("checkpoint.flush")
                    if self.pool.flush_page(pid):
                        flushed += 1
                    if action is not None:
                        faults.crash()
                writer.flush_all()
                sp.add("pages_flushed", float(flushed))
            last = writer.flushed_lsn
            rec = self.txn.min_rec_lsn()
            redo_lsn = rec if rec is not None else last + 1
            with trace_span("checkpoint.end") as sp:
                sp.add("redo_lsn", float(redo_lsn))
                write_checkpoint(
                    self,
                    self.data_dir,
                    last,
                    self.txn.next_txn_id,
                    redo_lsn=redo_lsn,
                    active_txns=att,
                )
                writer.retain_from(redo_lsn)
                action = faults.FAILPOINTS.hit("checkpoint.end")
                lsn = writer.append(
                    WalRecordType.CHECKPOINT_END,
                    0,
                    payload=json.dumps(
                        {"redo_lsn": redo_lsn, "last_lsn": last}
                    ).encode("utf-8"),
                )
                writer.flush_to(lsn)
                if action is not None:
                    faults.crash()
            if self.obs.metrics:
                self.metrics.counter("checkpoints_total").inc()
                self.metrics.counter("checkpoint_pages_flushed_total").inc(
                    flushed
                )
        return QueryResult(
            rows=[(last, redo_lsn, len(att))],
            columns=["checkpoint_lsn", "redo_lsn", "active_txns"],
        )

    def close(self) -> None:
        """Shut down cleanly: roll back open transactions, checkpoint
        (durable databases reopen from the snapshot with an empty WAL),
        and close the WAL file."""
        if self._closed:
            return
        self._closed = True
        for session in self.sessions():
            if session.txn is not None:
                self.rollback_session_txn(session)
        if self.data_dir is not None and self.txn.writer is not None:
            self.checkpoint()
            self.txn.writer.close()
            self.txn.writer = None

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- convenience --------------------------------------------------------------------------

    def insert_rows(
        self,
        table: str,
        rows: Sequence[Sequence[Any]],
        session: Optional[Session] = None,
    ) -> int:
        """Bulk insert under the session's transaction (or an implicit
        autocommitted one) — the programmatic twin of INSERT."""
        session = session or self._session
        own = session.txn
        txn = own if own is not None else self.txn.begin(session.id)
        try:
            self.txn.lock_table(txn, table)
            with self.txn.activate(txn), self._stmt_lock:
                count = self.catalog.insert_rows(table, rows)
                key = table.lower()
                txn.pending_epochs[key] = txn.pending_epochs.get(key, 0) + 1
        except BaseException:
            if own is not None:
                session.txn = None
            self._rollback_txn(txn)
            raise
        if own is None:
            self._commit_txn(txn)
        return count

    def analyze(self, table: Optional[str] = None, **kwargs: Any) -> None:
        self._invalidate_caches("ANALYZE")
        txn = self.txn.begin(self._session.id)
        try:
            for name in self._analyze_lock_targets(table):
                self.txn.lock_table(txn, name)
            with self.txn.activate(txn), self._stmt_lock:
                if table is None:
                    self.catalog.analyze_all(**kwargs)
                else:
                    self.catalog.analyze(table, **kwargs)
                sql = f"ANALYZE {table}" if table is not None else "ANALYZE"
                self.txn.log_ddl(json.dumps({"sql": sql}).encode("utf-8"))
        except BaseException:
            self._rollback_txn(txn)
            raise
        self._commit_txn(txn)

    def _analyze_lock_targets(self, table: Optional[str]) -> List[str]:
        if table is None:
            return sorted(info.name for info in self.catalog.tables())
        if self.catalog.has_table(table):
            return [table]
        return []

    def table(self, name: str) -> TableInfo:
        return self.catalog.table(name)

    def reset_io(self) -> None:
        self.disk.reset_stats()
        self.pool.reset_stats()

    def set_strategy(self, strategy: str, **kwargs: Any) -> None:
        """Switch join-order strategy ('dp', 'greedy', 'naive', ...)."""
        self._invalidate_caches("options change")
        self.options = PlannerOptions(strategy=strategy, **kwargs)
