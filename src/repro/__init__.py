"""repro — Evaluation and Optimization (VLDB 1977).

A complete reproduction of foundational-era cost-based query evaluation and
optimization: a relational engine (storage, buffer pool, B+-tree/hash
indexes, SQL front-end, Volcano executor) whose planner implements the
classic cost model, selectivity estimation, access-path selection, and
System-R dynamic-programming join enumeration with interesting orders —
plus the baseline planners and benchmark harness that regenerate the
evaluation tables and figures.

Quickstart::

    from repro import Database

    db = Database()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
    db.execute("INSERT INTO t VALUES (1, 2.5), (2, 7.5)")
    db.execute("ANALYZE t")
    print(db.query("SELECT v FROM t WHERE id = 2").rows)
"""

from .engine import Database, EngineError, QueryResult, Session
from .obs import InstrumentLevel, MetricsRegistry, ObsConfig, QueryLog, Span, Tracer
from .optimizer import Cost, CostModel, Planner, PlannerOptions
from .types import DataType

__version__ = "1.0.0"

__all__ = [
    "Database",
    "EngineError",
    "QueryResult",
    "Session",
    "Cost",
    "CostModel",
    "Planner",
    "PlannerOptions",
    "DataType",
    "InstrumentLevel",
    "MetricsRegistry",
    "ObsConfig",
    "QueryLog",
    "Span",
    "Tracer",
    "__version__",
]
